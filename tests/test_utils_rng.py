"""Tests for RNG plumbing (repro.utils.rng)."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(7).standard_normal(5)
        b = ensure_rng(7).standard_normal(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).standard_normal(5)
        b = ensure_rng(2).standard_normal(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough_shares_state(self):
        gen = np.random.default_rng(0)
        same = ensure_rng(gen)
        assert same is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(99)
        gen = ensure_rng(seq)
        assert isinstance(gen, np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent(self):
        a, b = spawn_rngs(0, 2)
        assert not np.array_equal(a.standard_normal(10), b.standard_normal(10))

    def test_deterministic_given_seed(self):
        a1, b1 = spawn_rngs(5, 2)
        a2, b2 = spawn_rngs(5, 2)
        np.testing.assert_array_equal(a1.standard_normal(4), a2.standard_normal(4))
        np.testing.assert_array_equal(b1.standard_normal(4), b2.standard_normal(4))

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(3)
        children = spawn_rngs(gen, 3)
        assert len(children) == 3
