"""Consistency checks between the documentation and the codebase.

A reproduction repo lives or dies by its cross-references: the experiment
index must point at benches that exist, and the algorithm map at modules
that import.  These tests keep the docs honest through refactors.
"""

import importlib
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).parent.parent


class TestDesignDoc:
    design = (ROOT / "DESIGN.md").read_text()

    def test_referenced_benches_exist(self):
        for name in re.findall(r"benchmarks/(bench_\w+\.py)", self.design):
            assert (ROOT / "benchmarks" / name).exists(), name

    def test_referenced_modules_exist(self):
        for path in re.findall(r"`((?:\w+/)+\w+\.py)`", self.design):
            candidates = (ROOT / "src" / "repro" / path, ROOT / path)
            assert any(c.exists() for c in candidates), path

    def test_every_bench_is_indexed(self):
        """Each benchmark driver must appear in DESIGN.md's experiment
        index (the promise that every experiment is documented)."""
        for bench in (ROOT / "benchmarks").glob("bench_*.py"):
            assert bench.name in self.design, bench.name

    def test_title_match_confirmed(self):
        assert "Efficient SRAM Failure Rate" in self.design
        assert "title collision" in self.design  # the match/mismatch note


class TestAlgorithmsDoc:
    algos = (ROOT / "docs" / "ALGORITHMS.md").read_text()

    def test_referenced_modules_import(self):
        for module in set(re.findall(r"`(repro(?:\.\w+)+)`", self.algos)):
            # Strip trailing attribute references like repro.gibbs.bounds.
            parts = module.split(".")
            for cut in range(len(parts), 1, -1):
                try:
                    mod = importlib.import_module(".".join(parts[:cut]))
                except ModuleNotFoundError:
                    continue
                remainder = parts[cut:]
                obj = mod
                for attr in remainder:
                    assert hasattr(obj, attr), f"{module}: missing {attr}"
                    obj = getattr(obj, attr)
                break
            else:
                pytest.fail(f"cannot import any prefix of {module}")


class TestReadme:
    readme = (ROOT / "README.md").read_text()

    def test_quickstart_names_exist(self):
        import repro

        for name in ("read_current_problem", "gibbs_importance_sampling"):
            assert name in self.readme
            assert hasattr(repro, name)

    def test_cli_problems_documented(self):
        from repro.cli import PROBLEMS

        for key in PROBLEMS:
            assert f"`{key}`" in self.readme, key

    def test_doc_files_referenced_exist(self):
        for path in ("DESIGN.md", "EXPERIMENTS.md", "docs/ALGORITHMS.md",
                     "docs/SUBSTRATE.md", "LICENSE"):
            assert (ROOT / path).exists(), path


class TestExperimentsDoc:
    experiments = (ROOT / "EXPERIMENTS.md").read_text()

    def test_mentions_every_problem(self):
        for name in ("rnm", "wnm", "iread", "twrite"):
            assert f"`{name}`" in self.experiments, name

    def test_bench_report_names_valid(self):
        bench_stems = {
            p.stem.replace("bench_", "")
            for p in (ROOT / "benchmarks").glob("bench_*.py")
        }
        for ref in re.findall(r"\(`([a-z0-9_]+)`\)", self.experiments):
            # Section headers reference report names like fig06_* or exact
            # stems; wildcard references are checked by prefix.
            if ref.endswith("_"):
                assert any(s.startswith(ref) for s in bench_stems), ref
            elif "_" in ref:
                assert any(
                    s == ref or s.startswith(ref.rstrip("*"))
                    for s in bench_stems
                ), ref
