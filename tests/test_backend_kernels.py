"""Backend-generic kernel tests: device derivatives, solver goldens, and the
bit-identity battery gating the compiled numpy fast path.

Two contracts from DESIGN.md ("Backends") are enforced here:

* the default numpy path — compiled stamping included — is **bit-identical**
  to the generic element-walk implementation;
* every other installed backend (and the opt-in tiny-matrix solve) matches
  numpy within float64 tolerances.

The ``backend_xp`` fixture parametrizes over every backend installed on the
machine, so on a numpy-only box these tests still pin the numpy behaviour
and automatically widen when torch/cupy appear.
"""

import numpy as np
import pytest

from repro.backend import to_numpy
from repro.backend.linalg import TINY_SOLVE_MAX, can_solve_tiny, solve_tiny
from repro.circuit import Circuit, solve_dc
from repro.circuit.netlist import GROUND
from repro.circuit.stamping import compile_plan
from repro.circuit.transient import simulate_transient, step_waveform
from repro.devices.mosfet import (
    NMOS,
    PMOS,
    Mosfet,
    MosfetParams,
    ekv_current_and_derivs,
)
from repro.sram.cell import DEVICE_NAMES, SixTransistorCell

NPARAMS = MosfetParams(polarity=NMOS, vth=0.35, beta=9e-4, n=1.35, lam=0.15)
PPARAMS = MosfetParams(polarity=PMOS, vth=0.35, beta=1.5e-4, n=1.45, lam=0.15)


def _fd_check(xp, params, vb, rtol=2e-5):
    """Central-difference check of the three analytic partials."""
    rng = np.random.default_rng(7)
    n = 64
    vg = xp.asarray(rng.uniform(-0.2, 1.4, n), dtype=xp.float64)
    vd = xp.asarray(rng.uniform(-0.2, 1.4, n), dtype=xp.float64)
    vs = xp.asarray(rng.uniform(-0.2, 1.4, n), dtype=xp.float64)
    dvt = xp.asarray(rng.normal(0.0, 0.05, n), dtype=xp.float64)
    dev = Mosfet(params)
    ids, d_dvg, d_dvd, d_dvs = (
        to_numpy(a) for a in dev.current_and_derivs(vg, vd, vs, vb, dvt)
    )
    h = 1e-7
    for target, grad in (("vg", d_dvg), ("vd", d_dvd), ("vs", d_dvs)):
        args_hi = {"vg": vg, "vd": vd, "vs": vs}
        args_lo = {"vg": vg, "vd": vd, "vs": vs}
        args_hi[target] = args_hi[target] + h
        args_lo[target] = args_lo[target] - h
        hi = to_numpy(dev.current(args_hi["vg"], args_hi["vd"], args_hi["vs"], vb, dvt))
        lo = to_numpy(dev.current(args_lo["vg"], args_lo["vd"], args_lo["vs"], vb, dvt))
        fd = (hi - lo) / (2.0 * h)
        scale = np.maximum(np.abs(grad), 1e-9)
        np.testing.assert_allclose(fd, grad, rtol=rtol, atol=1e-9 * scale.max())


class TestDeviceDerivatives:
    def test_nmos_finite_difference(self, backend_xp):
        _fd_check(backend_xp, NPARAMS, vb=0.0)

    def test_pmos_bulk_referenced_finite_difference(self, backend_xp):
        # The PMOS pinch-off is referenced to the n-well at VDD: the check
        # must hold in that reflected frame, not just at vb = 0.
        _fd_check(backend_xp, PPARAMS, vb=1.2)

    def test_pmos_off_at_zero_vgs(self, backend_xp):
        xp = backend_xp
        dev = Mosfet(PPARAMS)
        ids = to_numpy(
            dev.current(
                xp.asarray([1.2], dtype=xp.float64),
                xp.asarray([0.6], dtype=xp.float64),
                xp.asarray([1.2], dtype=xp.float64),
                1.2,
            )
        )
        assert abs(ids[0]) < 1e-9

    def test_stacked_device_axis_matches_per_device(self):
        # The compiled stamper evaluates all MOSFETs of a circuit at once
        # with a leading device axis and per-device parameter columns; each
        # lane must be bit-identical to the per-device call.
        rng = np.random.default_rng(11)
        n = 257
        v = rng.uniform(-0.2, 1.4, size=(4, 3, n))
        params = [NPARAMS, PPARAMS, NPARAMS]
        pol = np.array([[p.polarity] for p in params], dtype=float)
        vth = np.array([[p.vth] for p in params])
        beta = np.array([[p.beta] for p in params])
        nn = np.array([[p.n] for p in params])
        lam = np.array([[p.lam] for p in params])
        stacked = ekv_current_and_derivs(
            v[0], v[1], v[2], v[3], pol, vth, beta, nn, lam, xp=np
        )
        for i, p in enumerate(params):
            single = ekv_current_and_derivs(
                v[0, i], v[1, i], v[2, i], v[3, i],
                float(p.polarity), p.vth, p.beta, p.n, p.lam, xp=np,
            )
            for got, want in zip(stacked, single):
                np.testing.assert_array_equal(got[i], want)


def _inverter():
    c = Circuit("inv")
    c.add_mosfet("mn", NPARAMS, drain="out", gate="in", source="0")
    c.add_mosfet("mp", PPARAMS, drain="out", gate="in", source="vdd", bulk="vdd")
    return c


def _read_clamps(vdd):
    return {"vdd": vdd, "wl": vdd, "bl": vdd, "blb": vdd}


def _cell_problem(n=193, seed=3):
    cell = SixTransistorCell()
    rng = np.random.default_rng(seed)
    params = {
        name: {"delta_vth": rng.normal(0.0, 0.08, n)} for name in DEVICE_NAMES
    }
    return cell, params


class TestSolverGoldens:
    def test_inverter_vtc_matches_numpy(self, backend_xp):
        vin = np.linspace(0.0, 1.2, 121)
        ref = solve_dc(_inverter(), {"vdd": 1.2, "in": vin})
        got = solve_dc(
            _inverter(),
            {"vdd": 1.2, "in": backend_xp.asarray(vin, dtype=backend_xp.float64)},
            backend=backend_xp,
        )
        assert bool(np.all(to_numpy(got.converged)))
        np.testing.assert_allclose(
            to_numpy(got.voltage("out")), ref.voltage("out"), rtol=0, atol=1e-9
        )

    def test_sram_read_state_matches_numpy(self, backend_xp):
        cell, params = _cell_problem()
        circuit = cell.build_circuit()
        clamps = _read_clamps(cell.vdd)
        ref = solve_dc(circuit, clamps, element_params=params)
        params_xp = {
            name: {
                "delta_vth": backend_xp.asarray(
                    kw["delta_vth"], dtype=backend_xp.float64
                )
            }
            for name, kw in params.items()
        }
        got = solve_dc(
            cell.build_circuit(), clamps, element_params=params_xp,
            backend=backend_xp,
        )
        assert bool(np.all(to_numpy(got.converged)))
        for node in ("q", "qb"):
            np.testing.assert_allclose(
                to_numpy(got.voltage(node)), ref.voltage(node), rtol=0, atol=1e-9
            )


class TestTinySolve:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_matches_lapack_solve(self, k):
        rng = np.random.default_rng(k)
        n = 512
        jac = rng.normal(size=(n, k, k)) + 4.0 * np.eye(k)
        rhs = rng.normal(size=(n, k))
        got = solve_tiny(jac, rhs, xp=np)
        want = np.linalg.solve(jac, rhs[..., None])[..., 0]
        np.testing.assert_allclose(got, want, rtol=5e-10, atol=1e-12)

    def test_size_gate(self):
        assert can_solve_tiny(TINY_SOLVE_MAX)
        assert not can_solve_tiny(TINY_SOLVE_MAX + 1)

    def test_solver_opt_in_agrees_with_lapack_path(self):
        cell, params = _cell_problem(n=129, seed=9)
        circuit = cell.build_circuit()
        clamps = _read_clamps(cell.vdd)
        ref = solve_dc(circuit, clamps, element_params=params)
        got = solve_dc(circuit, clamps, element_params=params, tiny_solve=True)
        assert bool(np.all(got.converged))
        for node in ("q", "qb"):
            np.testing.assert_allclose(
                got.voltage(node), ref.voltage(node), rtol=0, atol=1e-9
            )


class TestBitIdentityBattery:
    """Compiled stamping must be bitwise equal to the generic element walk."""

    def _assert_solutions_identical(self, a, b):
        assert a.iterations == b.iterations
        np.testing.assert_array_equal(a.converged, b.converged)
        for node in a.voltages:
            np.testing.assert_array_equal(a.voltage(node), b.voltage(node))

    def test_read_configuration(self):
        cell, params = _cell_problem()
        circuit = cell.build_circuit()
        clamps = _read_clamps(cell.vdd)
        compiled = solve_dc(circuit, clamps, element_params=params, compiled=True)
        generic = solve_dc(circuit, clamps, element_params=params, compiled=False)
        assert bool(np.all(compiled.converged))
        self._assert_solutions_identical(compiled, generic)

    def test_write_configuration_exercises_restart(self):
        # Write clamps from the wrong initial guess force the solver through
        # its straggler-restart path; compiled and generic must walk it in
        # lockstep.
        cell, params = _cell_problem(n=257, seed=5)
        circuit = cell.build_circuit()
        vdd = cell.vdd
        clamps = {"vdd": vdd, "wl": vdd, "bl": 0.0, "blb": vdd}
        compiled = solve_dc(circuit, clamps, element_params=params, compiled=True)
        generic = solve_dc(circuit, clamps, element_params=params, compiled=False)
        self._assert_solutions_identical(compiled, generic)

    def test_multi_chunk_batch(self):
        # Batches beyond the stamper's lane chunk must tile bit-identically.
        cell, params = _cell_problem(n=2600, seed=13)
        circuit = cell.build_circuit()
        clamps = _read_clamps(cell.vdd)
        compiled = solve_dc(circuit, clamps, element_params=params, compiled=True)
        generic = solve_dc(circuit, clamps, element_params=params, compiled=False)
        self._assert_solutions_identical(compiled, generic)

    def test_mixed_elements_with_resistor_and_source(self):
        c = _inverter()
        c.add_resistor("rl", 50e3, "out", "0")
        c.add_current_source("ib", 2e-6, "out", "0")
        vin = np.linspace(0.0, 1.2, 97)
        compiled = solve_dc(c, {"vdd": 1.2, "in": vin}, compiled=True)
        generic = solve_dc(c, {"vdd": 1.2, "in": vin}, compiled=False)
        self._assert_solutions_identical(compiled, generic)

    def test_transient_compiled_matches_generic(self):
        cell, params = _cell_problem(n=48, seed=21)
        circuit = cell.build_circuit()
        vdd = cell.vdd
        sources = {
            "vdd": vdd,
            "wl": step_waveform(20e-12, 0.0, vdd),
            "bl": 0.0,
            "blb": vdd,
        }
        caps = {"q": 5e-15, "qb": 5e-15}
        initial = {"q": vdd, "qb": 0.0}
        kwargs = dict(
            element_params=params, initial=initial, t_stop=120e-12, dt=1e-12
        )
        res_c = simulate_transient(
            circuit, sources, caps, compiled=True, **kwargs
        )
        res_g = simulate_transient(
            circuit, sources, caps, compiled=False, **kwargs
        )
        np.testing.assert_array_equal(res_c.converged, res_g.converged)
        for node in res_c.voltages:
            np.testing.assert_array_equal(
                res_c.waveform(node), res_g.waveform(node)
            )

    def test_plan_cache_hit(self):
        cell, params = _cell_problem(n=17)
        circuit = cell.build_circuit()
        clamped = (GROUND, "vdd", "wl", "bl", "blb")
        free_index = {
            n: i for i, n in enumerate(n for n in circuit.nodes if n not in clamped)
        }
        plan_a = compile_plan(circuit, free_index, list(clamped), params)
        plan_b = compile_plan(circuit, free_index, list(clamped), params)
        assert plan_a is plan_b

    def test_compiled_true_raises_off_numpy(self):
        class NotNumpy:
            __name__ = "notnumpy"

        with pytest.raises(ValueError, match="numpy backend"):
            solve_dc(
                _inverter(), {"vdd": 1.2, "in": 0.5},
                backend=NotNumpy(), compiled=True,
            )
