"""Tests for the process-parallel execution layer (repro.parallel).

The load-bearing property is the determinism contract: the shard grid is a
function of ``(n_total, shard_size)`` only and every shard owns the child
stream at its spawn index, so a sharded run is bit-identical for every
worker count and every backend — the serial reference being ``n_workers=1``
of the very same path.
"""

import numpy as np
import pytest

from repro.mc.counter import CountedMetric
from repro.mc.importance import importance_sampling_estimate
from repro.mc.montecarlo import brute_force_monte_carlo
from repro.parallel import (
    MCShardTask,
    ParallelExecutor,
    checkpoint_grid,
    merge_mc_shards,
    plan_shards,
    resolve_executor,
    run_mc_shard,
    spawn_seed_sequences,
)
from repro.stats.mvnormal import MultivariateNormal
from repro.stats.qmc import QMCNormal
from repro.synthetic import LinearMetric


def _double(x):
    return 2 * x


@pytest.fixture
def problem():
    return LinearMetric(np.array([1.0, 0.5]), 2.2).problem("halfspace")


class TestParallelExecutor:
    def test_invalid_backend_raises(self):
        with pytest.raises(ValueError, match="backend"):
            ParallelExecutor(backend="gpu")

    def test_invalid_workers_raises(self):
        with pytest.raises(ValueError, match="n_workers"):
            ParallelExecutor(n_workers=0)

    def test_serial_runs_inline(self):
        ex = ParallelExecutor(n_workers=4, backend="serial")
        assert ex.runs_inline and not ex.cross_process

    def test_one_worker_runs_inline_any_backend(self):
        for backend in ("serial", "thread", "process"):
            ex = ParallelExecutor(n_workers=1, backend=backend)
            assert ex.runs_inline and not ex.cross_process

    def test_process_pool_is_cross_process(self):
        ex = ParallelExecutor(n_workers=2, backend="process")
        assert ex.cross_process and not ex.runs_inline

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_map_ordered(self, backend):
        ex = ParallelExecutor(n_workers=2, backend=backend)
        assert ex.map(_double, [3, 1, 2]) == [6, 2, 4]

    def test_map_empty(self):
        assert ParallelExecutor(n_workers=2).map(_double, []) == []

    def test_repr(self):
        assert "thread" in repr(ParallelExecutor(n_workers=2, backend="thread"))

    def test_resolve_prefers_executor(self):
        ex = ParallelExecutor(n_workers=3, backend="thread")
        assert resolve_executor(ex, 8, "process") is ex

    def test_resolve_none_means_legacy(self):
        assert resolve_executor(None, None) is None

    def test_resolve_builds_from_workers(self):
        ex = resolve_executor(None, 2, "thread")
        assert ex.n_workers == 2 and ex.backend == "thread"


class TestShardPlan:
    def test_partition_is_exact(self):
        shards = plan_shards(10_000, 4096)
        assert [s.count for s in shards] == [4096, 4096, 1808]
        assert [s.offset for s in shards] == [0, 4096, 8192]
        assert [s.index for s in shards] == [0, 1, 2]

    def test_independent_of_worker_count(self):
        # The plan's signature is (n_total, shard_size) — nothing else.
        assert plan_shards(999, 100) == plan_shards(999, 100)

    def test_invalid_args_raise(self):
        with pytest.raises(ValueError):
            plan_shards(0, 10)
        with pytest.raises(ValueError):
            plan_shards(10, 0)

    def test_checkpoint_grid_clamped_and_unique(self):
        grid = checkpoint_grid(5, 100)
        assert grid[0] >= 1 and grid[-1] == 5
        assert np.all(np.diff(grid) > 0)

    def test_checkpoint_grid_matches_serial_trace(self, problem):
        result = brute_force_monte_carlo(
            problem.metric, problem.spec, 5000, dimension=problem.dimension,
            rng=0, trace_points=50,
        )
        np.testing.assert_array_equal(
            result.trace.n_samples, checkpoint_grid(5000, 50)
        )


class TestShardedMonteCarlo:
    def test_merge_equals_manual_shard_sum(self, problem):
        """The sharded estimator is exactly its shards summed by hand."""
        n = 6000
        shard_size = 1000
        seed = 42
        shards = plan_shards(n, shard_size)
        seeds = spawn_seed_sequences(seed, len(shards))
        cps = checkpoint_grid(n, 40)
        results = [
            run_mc_shard(MCShardTask(
                shard=s, seed=c, metric=problem.metric, spec=problem.spec,
                dimension=problem.dimension, chunk_size=shard_size,
                checkpoints=cps,
            ))
            for s, c in zip(shards, seeds)
        ]
        manual_failures = sum(r.n_failures for r in results)
        merged_failures, trace_n, trace_est, _ = merge_mc_shards(results, n)
        assert merged_failures == manual_failures

        full = brute_force_monte_carlo(
            problem.metric, problem.spec, n, dimension=problem.dimension,
            rng=seed, n_workers=1, shard_size=shard_size, trace_points=40,
        )
        assert full.extras["n_failures"] == manual_failures
        assert full.failure_probability == manual_failures / n
        np.testing.assert_array_equal(full.trace.n_samples, trace_n)
        np.testing.assert_array_equal(full.trace.estimate, trace_est)

    def test_merge_rejects_incomplete_cover(self, problem):
        shards = plan_shards(100, 50)
        seeds = spawn_seed_sequences(0, len(shards))
        cps = checkpoint_grid(100, 10)
        results = [
            run_mc_shard(MCShardTask(
                shard=shards[0], seed=seeds[0], metric=problem.metric,
                spec=problem.spec, dimension=problem.dimension,
                chunk_size=50, checkpoints=cps,
            ))
        ]
        with pytest.raises(ValueError, match="cover"):
            merge_mc_shards(results, 100)

    def test_fixed_seed_and_workers_bit_reproducible(self, problem):
        kwargs = dict(
            dimension=problem.dimension, rng=7, n_workers=2,
            backend="thread", shard_size=512,
        )
        a = brute_force_monte_carlo(problem.metric, problem.spec, 4000, **kwargs)
        b = brute_force_monte_carlo(problem.metric, problem.spec, 4000, **kwargs)
        assert a.failure_probability == b.failure_probability
        np.testing.assert_array_equal(a.trace.estimate, b.trace.estimate)

    @pytest.mark.parametrize("backend,n_workers", [
        ("serial", 4), ("thread", 2), ("thread", 3), ("process", 2),
    ])
    def test_invariant_to_backend_and_workers(self, problem, backend, n_workers):
        """Every backend/worker combination equals the n_workers=1 reference."""
        reference = brute_force_monte_carlo(
            problem.metric, problem.spec, 4000, dimension=problem.dimension,
            rng=3, n_workers=1, shard_size=512,
        )
        other = brute_force_monte_carlo(
            problem.metric, problem.spec, 4000, dimension=problem.dimension,
            rng=3, n_workers=n_workers, backend=backend, shard_size=512,
        )
        assert other.failure_probability == reference.failure_probability
        assert other.extras["n_failures"] == reference.extras["n_failures"]
        np.testing.assert_array_equal(
            other.trace.estimate, reference.trace.estimate
        )

    def test_estimate_close_to_exact(self, problem):
        result = brute_force_monte_carlo(
            problem.metric, problem.spec, 60_000, dimension=problem.dimension,
            rng=0, n_workers=2, backend="thread", shard_size=8192,
        )
        exact = problem.exact_failure_probability
        assert abs(result.failure_probability - exact) < 0.3 * exact + 1e-3

    def test_counts_exact_inline(self, problem):
        metric = CountedMetric(problem.metric, problem.dimension)
        brute_force_monte_carlo(
            metric, problem.spec, 3000, rng=0, n_workers=1, shard_size=1000,
        )
        assert metric.count == 3000

    def test_counts_fold_across_processes(self, problem):
        metric = CountedMetric(problem.metric, problem.dimension)
        brute_force_monte_carlo(
            metric, problem.spec, 3000, rng=0, n_workers=2,
            backend="process", shard_size=1000,
        )
        assert metric.count == 3000
        assert metric.calls == 3


class TestShardedImportanceSampling:
    @pytest.fixture
    def proposal(self, problem):
        mean = np.array([1.8, 0.9])
        return MultivariateNormal(mean, np.eye(problem.dimension))

    @pytest.mark.parametrize("backend,n_workers", [
        ("serial", 2), ("thread", 3), ("process", 2),
    ])
    def test_invariant_to_backend_and_workers(self, problem, proposal,
                                              backend, n_workers):
        reference = importance_sampling_estimate(
            problem.metric, problem.spec, proposal, 4000,
            rng=11, n_workers=1, shard_size=600,
        )
        other = importance_sampling_estimate(
            problem.metric, problem.spec, proposal, 4000,
            rng=11, n_workers=n_workers, backend=backend, shard_size=600,
        )
        assert other.failure_probability == reference.failure_probability
        assert other.relative_error == reference.relative_error
        assert other.extras["n_failures"] == reference.extras["n_failures"]

    def test_estimate_close_to_exact(self, problem, proposal):
        result = importance_sampling_estimate(
            problem.metric, problem.spec, proposal, 20_000,
            rng=5, n_workers=2, backend="thread", shard_size=4096,
        )
        exact = problem.exact_failure_probability
        assert result.failure_probability == pytest.approx(exact, rel=0.2)

    def test_store_samples_concatenated_in_order(self, problem, proposal):
        sharded = importance_sampling_estimate(
            problem.metric, problem.spec, proposal, 2000,
            rng=9, n_workers=2, backend="thread", shard_size=300,
            store_samples=True,
        )
        assert sharded.extras["samples"].shape == (2000, problem.dimension)
        assert sharded.extras["failed"].shape == (2000,)
        reference = importance_sampling_estimate(
            problem.metric, problem.spec, proposal, 2000,
            rng=9, n_workers=1, shard_size=300, store_samples=True,
        )
        np.testing.assert_array_equal(
            sharded.extras["samples"], reference.extras["samples"]
        )

    def test_counts_fold_across_processes(self, problem, proposal):
        metric = CountedMetric(problem.metric, problem.dimension)
        importance_sampling_estimate(
            metric, problem.spec, proposal, 1500,
            rng=0, n_workers=2, backend="process", shard_size=500,
        )
        assert metric.count == 1500
        assert metric.calls == 3

    def test_counts_exact_on_thread_backend(self, problem, proposal):
        """Thread workers share the caller's counter; the lock keeps the
        concurrent increments exact (no lost updates)."""
        metric = CountedMetric(problem.metric, problem.dimension)
        importance_sampling_estimate(
            metric, problem.spec, proposal, 4000,
            rng=0, n_workers=4, backend="thread", shard_size=250,
        )
        assert metric.count == 4000
        assert metric.calls == 16


class TestShardedQMCSecondStage:
    """A stateful Sobol proposal must shard into disjoint sequence slices."""

    @pytest.fixture
    def base(self, problem):
        return MultivariateNormal(np.array([1.8, 0.9]), np.eye(problem.dimension))

    @pytest.mark.parametrize("backend,n_workers", [
        ("serial", 2), ("thread", 3), ("process", 2),
    ])
    def test_sharded_qmc_matches_serial(self, problem, base, backend, n_workers):
        """Shards draw [offset, offset+count) of the one scrambled sequence,
        so the sharded estimate equals the legacy serial QMC path bit-exactly
        — no duplicated Sobol points on any backend."""
        serial = importance_sampling_estimate(
            problem.metric, problem.spec, QMCNormal(base, seed=21), 2048,
            rng=17,
        )
        sharded = importance_sampling_estimate(
            problem.metric, problem.spec, QMCNormal(base, seed=21), 2048,
            rng=17, n_workers=n_workers, backend=backend, shard_size=512,
        )
        assert sharded.failure_probability == serial.failure_probability
        assert sharded.relative_error == serial.relative_error
        assert sharded.extras["n_failures"] == serial.extras["n_failures"]

    def test_sharded_run_advances_parent_sequence(self, problem, base):
        """After a sharded run the proposal has consumed its points, exactly
        like the serial path — a follow-up draw must not replay them."""
        serial_prop = QMCNormal(base, seed=22)
        importance_sampling_estimate(
            problem.metric, problem.spec, serial_prop, 1024, rng=3,
        )
        sharded_prop = QMCNormal(base, seed=22)
        importance_sampling_estimate(
            problem.metric, problem.spec, sharded_prop, 1024,
            rng=3, n_workers=2, backend="thread", shard_size=256,
        )
        np.testing.assert_array_equal(
            sharded_prop.sample(64), serial_prop.sample(64)
        )

    def test_stateful_proposal_without_sample_shard_raises(self, problem, base):
        class StatefulProposal:
            stateful_sample = True
            dimension = base.dimension

            def sample(self, n, rng=None):
                return base.sample(n, np.random.default_rng(0))

            def logpdf(self, x):
                return base.logpdf(x)

        with pytest.raises(ValueError, match="sample_shard"):
            importance_sampling_estimate(
                problem.metric, problem.spec, StatefulProposal(), 1000,
                rng=0, n_workers=2, backend="thread", shard_size=250,
            )


class TestParallelPanels:
    def test_compare_methods_parallel_equals_serial(self, problem):
        from repro.analysis.experiments import compare_methods

        serial = compare_methods(
            problem, methods=("MNIS", "G-C"), seed=3,
            n_second_stage=500, n_gibbs=40, doe_budget=150,
        )
        parallel = compare_methods(
            problem, methods=("MNIS", "G-C"), seed=3, n_workers=2,
            backend="thread",
            n_second_stage=500, n_gibbs=40, doe_budget=150,
        )
        assert list(parallel) == list(serial)
        for name in serial:
            assert (
                parallel[name].failure_probability
                == serial[name].failure_probability
            )

    def test_run_trials_parallel_equals_serial(self, problem):
        from repro.analysis.experiments import run_trials

        kwargs = dict(n_second_stage=400, n_gibbs=30, doe_budget=100)
        serial = run_trials(problem, "G-C", 3, seed=5, **kwargs)
        parallel = run_trials(
            problem, "G-C", 3, seed=5, n_workers=2, backend="thread", **kwargs
        )
        assert len(serial) == len(parallel) == 3
        for a, b in zip(serial, parallel):
            assert a.failure_probability == b.failure_probability

    def test_run_trials_rejects_bad_count(self, problem):
        from repro.analysis.experiments import run_trials

        with pytest.raises(ValueError, match="n_trials"):
            run_trials(problem, "G-C", 0)

    def test_sims_to_target_error_accepts_trials(self, problem):
        from repro.analysis.experiments import run_trials, sims_to_target_error

        trials = run_trials(
            problem, "MNIS", 3, seed=2,
            n_second_stage=3000, doe_budget=200,
        )
        rows = sims_to_target_error({"MNIS": trials}, target=0.5)
        row = rows["MNIS"]
        assert row["n_trials"] == 3
        assert 0 <= row["n_reached"] <= 3
        if row["second_stage"] is not None:
            assert row["total"] >= row["second_stage"]
