"""Tests for the process-parallel first-stage Gibbs fan-out.

The first stage's determinism contract is *stronger* than the sampled
stages': chain ``i`` always draws from the spawn-indexed child stream at
its global chain index and the bisection searches between draws are
RNG-free, so the merged chain is bit-identical not only for every worker
count and backend but for every chain-group size — grouping is purely a
performance knob.  These tests pin that contract, the shared-memory shard
transport, the adaptive sizing probe, the sharded blockade screening and
the starting-point spread error.
"""

import pickle

import numpy as np
import pytest

from repro.baselines.blockade import statistical_blockade
from repro.gibbs.starting_point import StartingPoint
from repro.gibbs.two_stage import (
    _spread_starting_points,
    gibbs_importance_sampling,
    run_first_stage,
)
from repro.mc.counter import CountedMetric
from repro.mc.importance import importance_sampling_estimate
from repro.mc.indicator import FailureSpec
from repro.parallel import (
    ParallelExecutor,
    ProbeReport,
    adaptive_group_size,
    adaptive_shard_size,
    merge_blockade_shards,
    merge_chain_shards,
    probe_metric_cost,
    run_gibbs_shard,
    spawn_seed_sequences,
)
from repro.parallel import transport
from repro.parallel.transport import (
    ShmArrayHandle,
    export_array,
    import_array,
    pack_array,
    should_use_shm,
    unpack_array,
)
from repro.stats.mvnormal import MultivariateNormal
from repro.synthetic import LinearMetric

BACKENDS = ("serial", "thread", "process")


@pytest.fixture
def problem():
    return LinearMetric(np.array([1.0, 0.5]), 2.2).problem("halfspace")


def _gibbs(problem, coordinate_system="spherical", **kwargs):
    defaults = dict(
        dimension=problem.dimension,
        coordinate_system=coordinate_system,
        n_gibbs=12,
        n_chains=4,
        n_second_stage=300,
        rng=11,
    )
    defaults.update(kwargs)
    return gibbs_importance_sampling(problem.metric, problem.spec, **defaults)


def _assert_same_run(a, b):
    assert a.failure_probability == b.failure_probability
    assert a.n_first_stage == b.n_first_stage
    assert a.n_second_stage == b.n_second_stage
    np.testing.assert_array_equal(
        a.extras["chain"].samples, b.extras["chain"].samples
    )
    np.testing.assert_array_equal(
        a.extras["chain"].per_chain_simulations,
        b.extras["chain"].per_chain_simulations,
    )


class TestFirstStageBitIdentity:
    """The fan-out battery: every backend/worker count, one answer."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_spherical_matches_inline_reference(
        self, problem, backend, n_workers
    ):
        reference = _gibbs(problem, n_workers=1)
        run = _gibbs(problem, n_workers=n_workers, backend=backend)
        _assert_same_run(run, reference)

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_cartesian_matches_inline_reference(self, problem, backend):
        reference = _gibbs(problem, coordinate_system="cartesian", n_workers=1)
        run = _gibbs(
            problem, coordinate_system="cartesian",
            n_workers=2, backend=backend,
        )
        _assert_same_run(run, reference)

    @pytest.mark.parametrize("group", [1, 2, 3, 4])
    def test_grouping_never_changes_results(self, problem, group):
        reference = _gibbs(problem, n_workers=1)
        run = _gibbs(
            problem, n_workers=2, backend="thread", chain_group_size=group
        )
        _assert_same_run(run, reference)

    def test_matches_direct_lockstep_with_chain_rngs(self, problem):
        """One merged fan-out == one run_lockstep call on per-chain streams."""
        from repro.gibbs.cartesian import CartesianGibbs

        starts = np.array([[3.0, 1.0], [2.5, 2.0], [3.5, 0.5]])
        seed, n_gibbs = 42, 10
        executor = ParallelExecutor(n_workers=2, backend="serial")
        merged = run_first_stage(
            problem.metric, problem.spec, starts, n_gibbs, executor,
            coordinate_system="cartesian", seed=seed, chain_group_size=1,
        )
        sampler = CartesianGibbs(problem.metric, problem.spec, 2)
        direct = sampler.run_lockstep(
            starts, n_gibbs,
            chain_rngs=[
                np.random.default_rng(child)
                for child in spawn_seed_sequences(seed, 3)
            ],
            verify_start=False,
        )
        np.testing.assert_array_equal(merged.samples, direct.samples)
        np.testing.assert_array_equal(
            merged.per_chain_simulations, direct.per_chain_simulations
        )

    def test_process_counts_fold_exactly(self, problem):
        """Cross-process simulation accounting equals the inline run's."""
        inline = _gibbs(problem, n_workers=1)
        fanned = _gibbs(problem, n_workers=2, backend="process")
        assert fanned.n_first_stage == inline.n_first_stage

    def test_external_count_records_worker_portion(self, problem):
        counted = CountedMetric(problem.metric, problem.dimension)
        gibbs_importance_sampling(
            counted, problem.spec, n_gibbs=8, n_chains=2,
            n_second_stage=300, rng=1, n_workers=2, backend="process",
        )
        assert 0 < counted.external_count <= counted.count
        assert "via workers" in repr(counted)

    def test_single_chain_keeps_sequential_engine(self, problem):
        serial = _gibbs(problem, n_chains=1, n_workers=None)
        sharded = _gibbs(problem, n_chains=1, n_workers=2, backend="process")
        np.testing.assert_array_equal(
            serial.extras["chain"].samples, sharded.extras["chain"].samples
        )

    def test_merge_rejects_missing_chains(self, problem):
        starts = np.array([[3.0, 1.0], [2.5, 2.0]])
        executor = ParallelExecutor(n_workers=1, backend="serial")
        from repro.gibbs.two_stage import GibbsShardTask
        from repro.parallel.sharding import plan_shards

        shards = plan_shards(2, 1)
        seeds = spawn_seed_sequences(0, 2)
        task = GibbsShardTask(
            shard=shards[0], chain_seeds=seeds[:1], metric=problem.metric,
            spec=problem.spec, dimension=2, coordinate_system="cartesian",
            starts=starts[:1], n_gibbs=5,
        )
        result = run_gibbs_shard(task)
        with pytest.raises(ValueError, match="cover 1 chains, expected 2"):
            merge_chain_shards([result], 2)


class TestSharedMemoryTransport:
    def test_round_trip_preserves_bits(self):
        array = np.arange(600.0).reshape(20, 30) / 7.0
        handle = export_array(array)
        assert isinstance(handle, ShmArrayHandle)
        np.testing.assert_array_equal(import_array(handle), array)

    def test_handle_pickles_without_the_array(self):
        """The whole point: the payload never rides the result pickle."""
        array = np.zeros((512, 512))
        handle = export_array(array)
        try:
            assert len(pickle.dumps(handle)) < 500 < array.nbytes
        finally:
            import_array(handle)  # attach + unlink, releasing the block

    def test_pack_unpack_passthrough_without_shm(self):
        array = np.ones((3, 3))
        packed = pack_array(array, use_shm=False)
        assert packed is array
        assert unpack_array(packed) is array
        assert unpack_array(None) is None

    def test_should_use_shm_requires_cross_process(self):
        big = 1 << 21
        assert should_use_shm(
            ParallelExecutor(n_workers=2, backend="process"), big
        )
        assert not should_use_shm(
            ParallelExecutor(n_workers=2, backend="thread"), big
        )
        assert not should_use_shm(
            ParallelExecutor(n_workers=1, backend="process"), big
        )

    def test_should_use_shm_respects_threshold(self):
        executor = ParallelExecutor(n_workers=2, backend="process")
        assert not should_use_shm(executor, 10)
        assert should_use_shm(executor, 10, threshold=8)

    def test_falls_back_cleanly_when_shm_unavailable(self, monkeypatch):
        monkeypatch.setattr(transport, "SHM_AVAILABLE", False)
        executor = ParallelExecutor(n_workers=2, backend="process")
        assert not should_use_shm(executor, 1 << 21)
        array = np.ones((4, 4))
        assert pack_array(array, use_shm=True) is array

    def test_gibbs_shard_payload_is_a_handle(self, problem):
        """A shm-enabled shard result pickles small; merge resolves it."""
        from repro.gibbs.two_stage import GibbsShardTask
        from repro.parallel.sharding import plan_shards

        (shard,) = plan_shards(2, 2)
        task = GibbsShardTask(
            shard=shard, chain_seeds=spawn_seed_sequences(3, 2),
            metric=problem.metric, spec=problem.spec, dimension=2,
            coordinate_system="cartesian",
            starts=np.array([[3.0, 1.0], [2.5, 2.0]]), n_gibbs=50,
            shm_payloads=True,
        )
        result = run_gibbs_shard(task)
        assert isinstance(result.samples, ShmArrayHandle)
        assert len(pickle.dumps(result)) < result.samples.nbytes
        merged = merge_chain_shards([result], 2)
        assert merged.samples.shape == (2, 50, 2)

    def test_second_stage_shm_equals_pickle_transport(
        self, problem, monkeypatch
    ):
        proposal = MultivariateNormal(
            np.array([2.0, 1.0]), 0.25 * np.eye(2)
        )

        def run():
            return importance_sampling_estimate(
                CountedMetric(problem.metric, problem.dimension),
                problem.spec, proposal, 400, rng=5, store_samples=True,
                n_workers=2, backend="process", shard_size=128,
            )

        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "1")
        via_shm = run()
        monkeypatch.delenv("REPRO_SHM_MIN_BYTES")
        via_pickle = run()
        assert via_shm.failure_probability == via_pickle.failure_probability
        np.testing.assert_array_equal(
            via_shm.extras["samples"], via_pickle.extras["samples"]
        )


class _FakeClock:
    """Deterministic timer: each call advances by a scripted step."""

    def __init__(self, step):
        self.step = step
        self.now = 0.0
        self.rows = 0

    def __call__(self):
        self.now += self.step
        return self.now


class TestAdaptiveSizing:
    def test_probe_is_pure_given_a_fake_timer(self, problem):
        metric = CountedMetric(problem.metric, problem.dimension)
        reports = [
            probe_metric_cost(metric, 2, timer=_FakeClock(0.001))
            for _ in range(2)
        ]
        assert reports[0] == reports[1]
        assert reports[0].n_probe_sims == (16 + 512) * 3
        assert metric.count == 2 * reports[0].n_probe_sims

    def test_probe_draws_are_seed_deterministic(self):
        seen = []

        def recording_metric(x):
            seen.append(np.array(x))
            return np.zeros(x.shape[0])

        probe_metric_cost(recording_metric, 3, seed=9, repeats=1)
        first = [s.copy() for s in seen]
        seen.clear()
        probe_metric_cost(recording_metric, 3, seed=9, repeats=1)
        for a, b in zip(first, seen):
            np.testing.assert_array_equal(a, b)

    def test_probe_validates_arguments(self):
        with pytest.raises(ValueError, match="probe_rows"):
            probe_metric_cost(lambda x: x[:, 0], 2, probe_rows=(512, 16))
        with pytest.raises(ValueError, match="repeats"):
            probe_metric_cost(lambda x: x[:, 0], 2, repeats=0)

    def test_shard_size_is_pure_and_snapped(self):
        report = ProbeReport(
            per_call_s=1e-4, per_row_s=1e-6,
            probe_rows=(16, 512), repeats=3, n_probe_sims=1584,
        )
        size = adaptive_shard_size(1_000_000, report, n_workers=4)
        assert size == adaptive_shard_size(1_000_000, report, n_workers=4)
        assert size & (size - 1) == 0  # power of two
        assert 64 <= size <= 1 << 16

    def test_slow_metric_gets_small_shards(self):
        fast = ProbeReport(1e-5, 1e-7, (16, 512), 3, 1584)
        slow = ProbeReport(1e-5, 1e-2, (16, 512), 3, 1584)
        assert adaptive_shard_size(100_000, slow) < adaptive_shard_size(
            100_000, fast
        )
        assert adaptive_shard_size(100_000, slow) == 64  # floor

    def test_shard_size_never_exceeds_total(self):
        # The pow2 floor is 64; a smaller workload caps at n_total itself.
        report = ProbeReport(0.0, 0.0, (16, 512), 3, 1584)
        assert adaptive_shard_size(50, report) == 50

    def test_group_size_bounds(self):
        slow = ProbeReport(1e-2, 1e-3, (16, 512), 3, 1584)
        assert adaptive_group_size(8, slow, n_workers=2) == 1
        fast = ProbeReport(1e-9, 1e-10, (16, 512), 3, 1584)
        assert adaptive_group_size(8, fast, n_workers=2) == 4  # ceil(8/2)

    def test_adaptive_requires_workers(self, problem):
        with pytest.raises(ValueError, match="n_workers"):
            _gibbs(problem, shard_size="adaptive")
        with pytest.raises(ValueError, match="n_workers"):
            importance_sampling_estimate(
                CountedMetric(problem.metric, problem.dimension),
                problem.spec,
                MultivariateNormal(np.array([2.0, 1.0]), np.eye(2)),
                400, rng=0, shard_size="adaptive",
            )

    def test_adaptive_run_records_grid_and_replays_bitwise(self, problem):
        adaptive = _gibbs(
            problem, n_workers=2, backend="thread",
            chain_group_size="adaptive", shard_size="adaptive",
        )
        record = adaptive.extras["adaptive_sharding"]
        assert set(record) == {"probe", "chain_group_size", "shard_size"}
        assert record["probe"]["n_probe_sims"] > 0
        # Replaying with the recorded integers reproduces the estimate
        # exactly (the probe cost shows up in the first-stage accounting
        # only, so compare the sampling outcomes, not n_first_stage).
        replay = _gibbs(
            problem, n_workers=2, backend="thread",
            chain_group_size=record["chain_group_size"],
            shard_size=record["shard_size"],
        )
        assert replay.failure_probability == adaptive.failure_probability
        np.testing.assert_array_equal(
            replay.extras["chain"].samples, adaptive.extras["chain"].samples
        )


class TestShardedBlockade:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_backend_battery_is_bit_identical(
        self, problem, backend, n_workers
    ):
        reference = statistical_blockade(
            problem.metric, problem.spec, 6000,
            dimension=problem.dimension, n_train=300, rng=4,
            n_workers=1, shard_size=1024,
        )
        run = statistical_blockade(
            problem.metric, problem.spec, 6000,
            dimension=problem.dimension, n_train=300, rng=4,
            n_workers=n_workers, backend=backend, shard_size=1024,
        )
        assert run.failure_probability == reference.failure_probability
        assert run.n_second_stage == reference.n_second_stage
        assert run.extras["n_blocked"] == reference.extras["n_blocked"]

    def test_training_stage_is_shared_with_legacy_path(self, problem):
        """Sharding only touches screening: thresholds match the serial run."""
        legacy = statistical_blockade(
            problem.metric, problem.spec, 4000,
            dimension=problem.dimension, n_train=300, rng=8,
        )
        sharded = statistical_blockade(
            problem.metric, problem.spec, 4000,
            dimension=problem.dimension, n_train=300, rng=8,
            n_workers=2, backend="serial", shard_size=1000,
        )
        assert (
            sharded.extras["blockade_threshold"]
            == legacy.extras["blockade_threshold"]
        )

    def test_process_counts_fold(self, problem):
        counted = CountedMetric(problem.metric, problem.dimension)
        result = statistical_blockade(
            counted, problem.spec, 6000, n_train=300, rng=4,
            n_workers=2, backend="process", shard_size=1024,
        )
        assert counted.count == 300 + result.n_second_stage

    def test_merge_rejects_partial_coverage(self):
        class R:
            count, n_failures, n_simulated = 10, 1, 2

        with pytest.raises(ValueError, match="expected 30"):
            merge_blockade_shards([R()], 30)


def _needle_metric(x):
    # Fails only inside a 1e-6 ball around (3, 0): jittered candidates
    # essentially never land there.
    return np.linalg.norm(x - np.array([3.0, 0.0]), axis=1) - 1e-6


class TestSpreadStartingPoints:
    def _start(self):
        return StartingPoint(
            x=np.array([3.0, 0.0]), r=3.0, alpha=np.array([0.0]),
            n_simulations=0, surrogate=None,
        )

    def test_unplaceable_chains_raise_clearly(self):
        spec = FailureSpec(0.0, fail_below=True)
        with pytest.raises(ValueError, match="chain_jitter=0"):
            _spread_starting_points(
                _needle_metric, spec, self._start(), 4,
                np.random.default_rng(0), zeta=8.0, jitter=0.5,
            )

    def test_zero_jitter_opts_into_duplicates(self):
        spec = FailureSpec(0.0, fail_below=True)
        points = _spread_starting_points(
            _needle_metric, spec, self._start(), 4,
            np.random.default_rng(0), zeta=8.0, jitter=0.0,
        )
        np.testing.assert_array_equal(points, np.tile([3.0, 0.0], (4, 1)))

    def test_error_propagates_from_the_full_flow(self, problem):
        spec = FailureSpec(0.0, fail_below=True)
        with pytest.raises(ValueError, match="could not verify"):
            gibbs_importance_sampling(
                _needle_metric, spec, dimension=2, n_gibbs=5, n_chains=3,
                n_second_stage=100, rng=0, start=self._start(),
            )


class TestPersistentPool:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_pool_is_reused_inside_context(self, backend):
        executor = ParallelExecutor(n_workers=2, backend=backend)
        with executor:
            first = executor._pool
            assert first is not None
            executor.map(_square, [1, 2, 3])
            assert executor._pool is first
        assert executor._pool is None
        # And per-call pools still work after the context closes.
        assert executor.map(_square, [3]) == [9]

    def test_inline_context_is_noop(self):
        executor = ParallelExecutor(n_workers=1, backend="process")
        with executor:
            assert executor._pool is None


def _square(x):
    return x * x
