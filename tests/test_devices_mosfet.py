"""Tests for the EKV-style MOSFET model (repro.devices.mosfet)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.mosfet import NMOS, PMOS, Mosfet, MosfetParams, THERMAL_VOLTAGE

NMOS_PARAMS = MosfetParams(polarity=NMOS, vth=0.35, beta=9e-4, n=1.35, lam=0.15)
PMOS_PARAMS = MosfetParams(polarity=PMOS, vth=0.35, beta=1.5e-4, n=1.45, lam=0.15)

voltage = st.floats(-0.3, 1.5)


class TestParams:
    def test_invalid_polarity_raises(self):
        with pytest.raises(ValueError, match="polarity"):
            MosfetParams(polarity=2, vth=0.3, beta=1e-4)

    def test_nonpositive_beta_raises(self):
        with pytest.raises(ValueError, match="beta"):
            MosfetParams(polarity=NMOS, vth=0.3, beta=0.0)

    def test_nonpositive_slope_raises(self):
        with pytest.raises(ValueError, match="slope"):
            MosfetParams(polarity=NMOS, vth=0.3, beta=1e-4, n=-1.0)

    def test_with_vth_shift(self):
        shifted = NMOS_PARAMS.with_vth_shift(0.05)
        assert shifted.vth == pytest.approx(0.40)
        assert NMOS_PARAMS.vth == pytest.approx(0.35)  # original untouched


class TestNmosRegions:
    device = Mosfet(NMOS_PARAMS)

    def test_off_state_leakage_small(self):
        ids = self.device.current(vg=0.0, vd=1.2, vs=0.0)
        assert 0 < ids < 1e-9

    def test_strong_inversion_current_large(self):
        ids = self.device.current(vg=1.2, vd=1.2, vs=0.0)
        assert ids > 1e-5

    def test_subthreshold_slope_is_exponential(self):
        """Current should grow ~exp(vg / (n Ut)) deep below threshold."""
        vg = np.array([0.00, 0.05, 0.10])
        ids = self.device.current(vg, 1.2, 0.0)
        ratios = ids[1:] / ids[:-1]
        expected = np.exp(0.05 / (NMOS_PARAMS.n * THERMAL_VOLTAGE))
        np.testing.assert_allclose(ratios, expected, rtol=0.05)

    def test_zero_vds_zero_current(self):
        ids = self.device.current(vg=1.0, vd=0.4, vs=0.4)
        assert ids == pytest.approx(0.0, abs=1e-15)

    def test_current_monotone_in_vd(self):
        vd = np.linspace(-0.1, 1.3, 50)
        ids = self.device.current(0.9, vd, 0.0)
        assert np.all(np.diff(ids) > 0)

    def test_current_monotone_in_vg(self):
        vg = np.linspace(0.0, 1.3, 50)
        ids = self.device.current(vg, 1.2, 0.0)
        assert np.all(np.diff(ids) > 0)

    def test_reverse_mode_negative_current(self):
        ids = self.device.current(vg=1.0, vd=0.0, vs=0.8)
        assert ids < 0

    def test_vth_shift_reduces_current(self):
        nominal = self.device.current(0.8, 1.2, 0.0)
        shifted = self.device.current(0.8, 1.2, 0.0, delta_vth=0.1)
        assert shifted < nominal

    def test_vth_shift_broadcasts(self):
        dv = np.array([-0.05, 0.0, 0.05])
        ids = self.device.current(0.8, 1.2, 0.0, delta_vth=dv)
        assert ids.shape == (3,)
        assert ids[0] > ids[1] > ids[2]


class TestPmos:
    device = Mosfet(PMOS_PARAMS)

    def test_off_when_vgs_zero(self):
        ids = self.device.current(vg=1.2, vd=0.6, vs=1.2, vb=1.2)
        assert abs(ids) < 1e-9

    def test_on_when_gate_low(self):
        ids = self.device.current(vg=0.0, vd=0.6, vs=1.2, vb=1.2)
        assert ids < -1e-6  # conventional current flows source -> drain

    def test_mirror_symmetry_with_nmos(self):
        """PMOS(v) must equal -NMOS(-v) for mirrored parameters."""
        n_params = MosfetParams(NMOS, vth=0.35, beta=1.5e-4, n=1.45, lam=0.15)
        nmos = Mosfet(n_params)
        vg, vd, vs, vb = 0.3, 0.6, 1.2, 1.2
        i_p = self.device.current(vg, vd, vs, vb)
        i_n = nmos.current(-(vg - vb), -(vd - vb), -(vs - vb), 0.0)
        assert i_p == pytest.approx(-i_n, rel=1e-12)


class TestDerivatives:
    @given(voltage, voltage, voltage, st.floats(-0.3, 0.3))
    @settings(max_examples=60, deadline=None)
    def test_nmos_derivatives_match_finite_differences(self, vg, vd, vs, dvth):
        device = Mosfet(NMOS_PARAMS)
        _, d_vg, d_vd, d_vs = device.current_and_derivs(vg, vd, vs, 0.0, dvth)
        h = 1e-6
        for analytic, bump in (
            (d_vg, lambda e: device.current(vg + e, vd, vs, 0.0, dvth)),
            (d_vd, lambda e: device.current(vg, vd + e, vs, 0.0, dvth)),
            (d_vs, lambda e: device.current(vg, vd, vs + e, 0.0, dvth)),
        ):
            numeric = (bump(h) - bump(-h)) / (2 * h)
            assert analytic == pytest.approx(numeric, rel=1e-4, abs=1e-12)

    @given(voltage, voltage, voltage)
    @settings(max_examples=30, deadline=None)
    def test_pmos_derivatives_match_finite_differences(self, vg, vd, vs):
        device = Mosfet(PMOS_PARAMS)
        _, d_vg, d_vd, d_vs = device.current_and_derivs(vg, vd, vs, 1.2)
        h = 1e-6
        for analytic, bump in (
            (d_vg, lambda e: device.current(vg + e, vd, vs, 1.2)),
            (d_vd, lambda e: device.current(vg, vd + e, vs, 1.2)),
            (d_vs, lambda e: device.current(vg, vd, vs + e, 1.2)),
        ):
            numeric = (bump(h) - bump(-h)) / (2 * h)
            assert analytic == pytest.approx(numeric, rel=1e-4, abs=1e-12)

    def test_output_conductance_positive(self):
        """dI/dVd > 0 everywhere: what makes node residuals monotone."""
        device = Mosfet(NMOS_PARAMS)
        rng = np.random.default_rng(0)
        vg, vd, vs = rng.uniform(-0.3, 1.5, (3, 200))
        _, _, d_vd, _ = device.current_and_derivs(vg, vd, vs)
        assert np.all(d_vd > 0)

    def test_extreme_voltages_finite(self):
        device = Mosfet(NMOS_PARAMS)
        ids, d_vg, d_vd, d_vs = device.current_and_derivs(50.0, 50.0, -50.0)
        assert np.isfinite(ids) and np.isfinite(d_vg)
        ids2 = device.current(-50.0, 1.0, 0.0)
        assert np.isfinite(ids2) and ids2 >= 0
