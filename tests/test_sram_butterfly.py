"""Tests for butterfly-curve margin extraction (repro.sram.butterfly).

The key validation uses *synthetic piecewise-linear curves* whose largest
inscribed square is known geometrically, independent of any circuit.
"""

import numpy as np
import pytest

from repro.sram.butterfly import (
    line_family_sides,
    lobe_margins,
    slope_transforms,
    write_margin,
)


def ideal_inverter_curve(grid, v_high, v_low, trip, gain=20.0):
    """A steep, strictly decreasing tanh-style VTC."""
    return v_low + (v_high - v_low) * 0.5 * (1 - np.tanh(gain * (grid - trip)))


class TestLineFamilySides:
    def test_symmetric_butterfly_t_antisymmetric(self):
        grid = np.linspace(0, 1.2, 201)
        curve = ideal_inverter_curve(grid, 1.2, 0.0, 0.6)
        c = np.linspace(-0.9, 0.9, 19)
        t = line_family_sides(grid, curve, curve, c)
        # Same curve for both halves: t(c) = -t(-c) by mirror symmetry.
        np.testing.assert_allclose(t, -t[::-1], atol=1e-6)

    def test_t_zero_at_intersections(self):
        grid = np.linspace(0, 1.2, 401)
        curve = ideal_inverter_curve(grid, 1.2, 0.0, 0.6)
        t = line_family_sides(grid, curve, curve, np.array([0.0]))
        assert abs(t[0]) < 1e-6

    def test_batched_curves(self):
        grid = np.linspace(0, 1.2, 101)
        base = ideal_inverter_curve(grid, 1.2, 0.0, 0.6)
        curves = np.stack([base, base * 0.9 + 0.05], axis=1)
        c = np.linspace(-0.5, 0.5, 7)
        t = line_family_sides(grid, curves, curves, c)
        assert t.shape == (7, 2)

    def test_precomputed_transforms_identical(self):
        """Passing slope_transforms output must reproduce the internal path
        bit-for-bit — the contract lobe_margins relies on to share the
        transforms between side extraction and its validity mask."""
        grid = np.linspace(0, 1.2, 101)
        base = ideal_inverter_curve(grid, 1.2, 0.0, 0.55)
        curves = np.stack([base, base * 0.85 + 0.1], axis=1)
        c = np.linspace(-0.8, 0.8, 13)
        transforms = slope_transforms(grid, curves, curves)
        z_left, z_right = transforms
        np.testing.assert_array_equal(
            z_right, curves - grid[:, np.newaxis]
        )
        np.testing.assert_array_equal(
            z_left, grid[:, np.newaxis] - curves
        )
        t_internal = line_family_sides(grid, curves, curves, c)
        t_shared = line_family_sides(grid, curves, curves, c, transforms)
        np.testing.assert_array_equal(t_internal, t_shared)


class TestLobeMargins:
    def test_square_size_of_ideal_butterfly(self):
        """For two ideal (step-like) inverters with rails [0, 1.2], right
        trip at 0.4 and left trip at 0.8, the lobes are rectangles
        [0, 0.4] x [0.8, 1.2] and [0.4, 1.2] x [0, 0.8], whose largest
        inscribed squares have sides 0.4 and 0.8 — classical geometry with
        a known exact answer."""
        grid = np.linspace(0, 1.2, 801)
        right = ideal_inverter_curve(grid, 1.2, 0.0, 0.4, gain=400.0)
        left = ideal_inverter_curve(grid, 1.2, 0.0, 0.8, gain=400.0)
        pos, neg = lobe_margins(grid, left, right)
        assert pos == pytest.approx(0.4, abs=0.02)
        assert neg == pytest.approx(0.8, abs=0.02)

    def test_symmetric_cell_equal_lobes(self):
        grid = np.linspace(0, 1.2, 201)
        curve = ideal_inverter_curve(grid, 1.2, 0.1, 0.6)
        pos, neg = lobe_margins(grid, curve, curve)
        assert pos == pytest.approx(neg, abs=1e-6)
        assert pos > 0.2

    def test_collapsed_lobe_negative_margin(self):
        """When one curve sits entirely above the other (monostable), the
        lost lobe's margin must go negative, not clamp at zero."""
        grid = np.linspace(0, 1.2, 201)
        right = ideal_inverter_curve(grid, 1.2, 0.0, 0.3)
        # Left curve shifted so its output never goes low enough to cross:
        left = ideal_inverter_curve(grid, 1.2, 0.9, 0.9)
        pos, neg = lobe_margins(grid, left, right)
        assert (pos < 0) or (neg < 0)

    def test_even_n_lines_rejected(self):
        grid = np.linspace(0, 1.2, 51)
        curve = ideal_inverter_curve(grid, 1.2, 0.0, 0.6)
        with pytest.raises(ValueError, match="odd"):
            lobe_margins(grid, curve, curve, n_lines=20)

    def test_margin_monotone_in_lobe_size(self):
        """Growing the upper-left lobe (right trip higher, left trip lower)
        must grow the c > 0 margin."""
        grid = np.linspace(0, 1.2, 401)
        margins = []
        for sep in (0.05, 0.15, 0.25):
            right = ideal_inverter_curve(grid, 1.2, 0.0, 0.6 + sep, gain=50.0)
            left = ideal_inverter_curve(grid, 1.2, 0.0, 0.6 - sep, gain=50.0)
            pos, _ = lobe_margins(grid, left, right)
            margins.append(pos)
        assert margins[0] < margins[1] < margins[2]

    def test_batch_shape(self):
        grid = np.linspace(0, 1.2, 101)
        base = ideal_inverter_curve(grid, 1.2, 0.0, 0.6)
        curves = np.repeat(base[:, np.newaxis], 4, axis=1)
        pos, neg = lobe_margins(grid, curves, curves)
        assert pos.shape == (4,) and neg.shape == (4,)


class TestWriteMargin:
    def grid(self):
        return np.linspace(0, 1.2, 201)

    def test_writable_cell_positive(self):
        grid = self.grid()
        read_curve = ideal_inverter_curve(grid, 1.2, 0.2, 0.6)
        # Write-driven curve: collapses to a sliver near x = 0.
        write_curve = 0.08 * np.exp(-3 * grid)
        wm = write_margin(grid, write_curve, read_curve)
        assert wm > 0.1

    def test_unwritable_cell_negative(self):
        grid = self.grid()
        read_curve = ideal_inverter_curve(grid, 1.2, 0.2, 0.3, gain=30.0)
        # Write curve extends far right at low y: retention lobe survives.
        write_curve = np.maximum(1.0 - 2.0 * grid, 0.0)
        wm = write_margin(grid, write_curve, read_curve)
        assert wm < 0

    def test_margin_decreases_with_stronger_retention(self):
        grid = self.grid()
        read_curve = ideal_inverter_curve(grid, 1.2, 0.2, 0.6)
        margins = []
        for reach in (0.05, 0.3, 0.6):
            write_curve = np.maximum(reach * (1.0 - grid / 0.8), 0.0)
            margins.append(write_margin(grid, write_curve, read_curve))
        assert margins[0] > margins[1] > margins[2]

    def test_cap_leaves_points(self):
        grid = self.grid()
        with pytest.raises(ValueError, match="no write-curve points"):
            write_margin(grid, grid * 0, grid * 0, y_cap_fraction=-1.0)

    def test_batched(self):
        grid = self.grid()
        read_curve = ideal_inverter_curve(grid, 1.2, 0.2, 0.6)
        write_curves = np.stack(
            [0.05 * np.exp(-3 * grid), 0.5 * np.exp(-1 * grid)], axis=1
        )
        reads = np.repeat(read_curve[:, np.newaxis], 2, axis=1)
        wm = write_margin(grid, write_curves, reads)
        assert wm.shape == (2,)
        assert wm[0] > wm[1]  # shorter write sliver = bigger eye
