"""Tests for the analytic synthetic problems (repro.synthetic.metrics)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synthetic import (
    AnnularArcMetric,
    LinearMetric,
    QuadrantMetric,
    SphereTailMetric,
)


def mc_check(problem, rng, n=400_000):
    """Crude Monte-Carlo estimate for cross-validation of exact formulas."""
    x = rng.standard_normal((n, problem.dimension))
    return problem.indicator(x).mean()


class TestLinearMetric:
    def test_margin_sign(self):
        m = LinearMetric(np.array([1.0, 0.0]), 2.0)
        assert m(np.array([[3.0, 0.0]]))[0] < 0  # fails
        assert m(np.array([[1.0, 0.0]]))[0] > 0  # passes

    def test_exact_probability_formula(self):
        m = LinearMetric(np.array([3.0, 4.0]), 10.0)  # ||a|| = 5, b/||a|| = 2
        from scipy.stats import norm

        assert m.exact_failure_probability == pytest.approx(norm.cdf(-2.0))

    def test_exact_matches_mc(self, rng):
        prob = LinearMetric(np.array([1.0, -1.0, 2.0]), 3.0).problem()
        est = mc_check(prob, rng)
        assert est == pytest.approx(prob.exact_failure_probability, rel=0.1)

    def test_zero_direction_raises(self):
        with pytest.raises(ValueError):
            LinearMetric(np.zeros(3), 1.0)

    @given(st.integers(2, 30))
    @settings(max_examples=10, deadline=None)
    def test_any_dimension(self, m):
        metric = LinearMetric(np.ones(m), 4.0 * math.sqrt(m))
        # b/||a|| = 4 regardless of dimension.
        assert metric.exact_failure_probability == pytest.approx(
            3.167e-5, rel=1e-3
        )


class TestQuadrantMetric:
    def test_eq18_quarter_plane(self):
        """The paper's Eq. (18): P(x1 >= 0, x2 >= 0) = 1/4."""
        m = QuadrantMetric(np.zeros(2))
        assert m.exact_failure_probability == pytest.approx(0.25)

    def test_margin_sign(self):
        m = QuadrantMetric(np.array([1.0, 1.0]))
        assert m(np.array([[2.0, 2.0]]))[0] < 0
        assert m(np.array([[2.0, 0.0]]))[0] > 0

    def test_exact_matches_mc(self, rng):
        prob = QuadrantMetric(np.array([1.0, 0.5])).problem()
        est = mc_check(prob, rng)
        assert est == pytest.approx(prob.exact_failure_probability, rel=0.05)

    def test_scalar_corner(self):
        m = QuadrantMetric(1.5)
        assert m.dimension == 1


class TestSphereTailMetric:
    def test_exact_probability_2d(self):
        m = SphereTailMetric(radius=3.0, dimension=2)
        assert m.exact_failure_probability == pytest.approx(math.exp(-4.5))

    def test_exact_matches_mc(self, rng):
        prob = SphereTailMetric(radius=2.0, dimension=4).problem()
        est = mc_check(prob, rng)
        assert est == pytest.approx(prob.exact_failure_probability, rel=0.05)

    def test_margin_sign(self):
        m = SphereTailMetric(radius=2.0, dimension=2)
        assert m(np.array([[3.0, 0.0]]))[0] < 0
        assert m(np.array([[1.0, 0.0]]))[0] > 0

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            SphereTailMetric(radius=-1.0, dimension=2)


class TestAnnularArcMetric:
    def test_exact_probability(self):
        m = AnnularArcMetric(radius=3.0, center_angle=0.0, half_width=math.pi / 4)
        expected = math.exp(-4.5) * 0.25
        assert m.exact_failure_probability == pytest.approx(expected)

    def test_exact_matches_mc(self, rng):
        prob = AnnularArcMetric(2.0, 1.0, 1.0).problem()
        est = mc_check(prob, rng)
        assert est == pytest.approx(prob.exact_failure_probability, rel=0.1)

    def test_fails_only_inside_arc(self):
        m = AnnularArcMetric(radius=3.0, center_angle=0.0, half_width=0.5)
        inside = np.array([[4.0, 0.0]])
        wrong_angle = np.array([[0.0, 4.0]])
        too_close = np.array([[1.0, 0.0]])
        assert m(inside)[0] < 0
        assert m(wrong_angle)[0] > 0
        assert m(too_close)[0] > 0

    def test_angle_wrapping(self):
        """A region straddling the +/- pi cut must stay continuous."""
        m = AnnularArcMetric(radius=2.0, center_angle=math.pi, half_width=0.4)
        just_above = np.array([[-4.0, 0.1]])
        just_below = np.array([[-4.0, -0.1]])
        assert m(just_above)[0] < 0
        assert m(just_below)[0] < 0

    def test_invalid_half_width(self):
        with pytest.raises(ValueError):
            AnnularArcMetric(2.0, 0.0, 4.0)

    def test_problem_wrapper(self):
        prob = AnnularArcMetric(3.0, 0.0, 0.5).problem("demo")
        assert prob.name == "demo"
        assert prob.dimension == 2
        x = np.array([[4.0, 0.0]])
        assert prob.indicator(x)[0]
