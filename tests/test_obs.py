"""Tests for the live observability layer (repro.obs).

Contract under test: the progress engine is a pure observer — results
are bit-identical with observability on or off on every backend — and
its view is trustworthy: progress is monotone even when completions land
out of order, ETAs are sane when a resumed run replays a shard prefix,
and the Prometheus exposition parses line by line.
"""

import threading
import time
import urllib.error
import urllib.request
from types import SimpleNamespace

import numpy as np
import pytest

from repro import telemetry
from repro.mc.importance import importance_sampling_estimate
from repro.mc.montecarlo import brute_force_monte_carlo
from repro.obs import ProgressEngine, activate, get_active, stage_for
from repro.obs.http import obs_status, start_metrics_server
from repro.obs.prometheus import parse_exposition, render_exposition
from repro.obs.top import fetch_status, render_dashboard, run_top
from repro.parallel import ParallelExecutor, run_worker
from repro.parallel.workers import run_is_shard, run_mc_shard
from repro.stats.mvnormal import MultivariateNormal
from repro.synthetic import LinearMetric


@pytest.fixture
def problem():
    return LinearMetric(np.array([1.0, 0.5]), 2.2).problem("halfspace")


def _start_worker(address):
    thread = threading.Thread(
        target=run_worker, args=(address[0], address[1]), daemon=True
    )
    thread.start()
    return thread


def _mc(problem, executor=None, **kwargs):
    return brute_force_monte_carlo(
        problem.metric, problem.spec, 2000,
        dimension=problem.dimension, rng=9,
        chunk_size=250, shard_size=250, executor=executor, **kwargs,
    )


class FakeTimer:
    def __init__(self):
        self.now = 0.0

    def advance(self, dt):
        self.now += dt

    def __call__(self):
        return self.now


# ----------------------------------------------------------------------
# bit-identity: observing never changes results


class TestBitIdentity:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_mc_identical_on_and_off(self, problem, backend):
        reference = _mc(problem, n_workers=2, backend=backend)
        with activate(ProgressEngine()) as engine:
            observed = _mc(problem, n_workers=2, backend=backend)
        assert engine.n_events > 0  # the hooks actually fired
        assert (
            observed.failure_probability == reference.failure_probability
        )
        assert observed.extras["n_failures"] == reference.extras["n_failures"]
        np.testing.assert_array_equal(
            observed.trace.estimate, reference.trace.estimate
        )

    def test_mc_identical_on_remote_backend(self, problem):
        reference = _mc(problem, n_workers=1, backend="serial")
        with activate(ProgressEngine()) as engine:
            with ParallelExecutor(
                backend="remote", min_workers=2, heartbeat=0.5
            ) as ex:
                threads = [_start_worker(ex.address) for _ in range(2)]
                observed = _mc(problem, executor=ex)
        assert (
            observed.failure_probability == reference.failure_probability
        )
        np.testing.assert_array_equal(
            observed.trace.estimate, reference.trace.estimate
        )
        # The coordinator's fleet snapshot was attached and reports hosts.
        fleet = engine.snapshot()["fleet"]
        assert fleet is not None and fleet["counts"]["joined"] == 2
        for thread in threads:
            thread.join(timeout=5)

    def test_second_stage_identical_serial_and_sharded(self, problem):
        proposal = MultivariateNormal(
            mean=np.array([2.0, 1.0]), cov=np.eye(problem.dimension)
        )

        def run(**kwargs):
            return importance_sampling_estimate(
                problem.metric, problem.spec, proposal, 4096,
                rng=5, **kwargs,
            )

        for kwargs in ({}, {"n_workers": 2, "backend": "thread",
                            "shard_size": 512}):
            reference = run(**kwargs)
            with activate(ProgressEngine()) as engine:
                observed = run(**kwargs)
            assert engine.n_events > 0
            assert (
                observed.failure_probability
                == reference.failure_probability
            )
            assert observed.relative_error == reference.relative_error

    def test_serial_paths_still_report_progress(self, problem):
        with activate(ProgressEngine()) as engine:
            _mc(problem)  # historical unsharded path
        (stage,) = engine.snapshot()["stages"]
        assert stage["stage"] == "mc"
        assert stage["shards_done"] == 1
        assert stage["sims_live"] == 2000
        assert stage["convergence"] is not None

    def test_witness_engine_records_zero_events_when_off(self, problem):
        witness = ProgressEngine()
        _mc(problem, n_workers=2, backend="thread")
        assert get_active() is None
        assert witness.n_events == 0


# ----------------------------------------------------------------------
# monotone progress under out-of-order completions


class TestMonotoneProgress:
    def test_fraction_never_decreases(self):
        engine = ProgressEngine(timer=FakeTimer())
        engine.map_started("mc", 10)
        seen = []
        # Completions land in an arbitrary order (remote workers race);
        # the engine only counts, so order cannot matter.
        for index in [3, 0, 7, 9, 1, 2, 8, 4, 6, 5]:
            engine.shard_done("mc", SimpleNamespace(n_sims=100 + index))
            seen.append(engine.snapshot()["stages"][0]["fraction"])
        assert seen == sorted(seen)
        assert seen[-1] == 1.0

    def test_totals_only_grow(self):
        engine = ProgressEngine(timer=FakeTimer())
        engine.map_started("mc", 4)
        state = engine.snapshot()["stages"][0]
        assert state["shards_total"] == 4
        # A second, smaller map on the same stage must not shrink totals.
        engine.map_started("mc", 2)
        assert engine.snapshot()["stages"][0]["shards_total"] == 4
        for _ in range(5):  # one more completion than planned
            engine.shard_done("mc", SimpleNamespace(n_sims=10))
        state = engine.snapshot()["stages"][0]
        assert state["shards_done"] == 5
        assert state["shards_total"] == 5  # floored at done, never < done
        assert state["fraction"] == 1.0

    def test_stage_names_resolved_from_runner_functions(self):
        assert stage_for(run_mc_shard) == "mc"
        assert stage_for(run_is_shard) == "second_stage"
        assert stage_for(len) == "len"  # unknown functions keep their name


# ----------------------------------------------------------------------
# ETA sanity, including replayed-prefix resumes


class TestEta:
    def test_eta_tracks_remaining_work(self):
        timer = FakeTimer()
        engine = ProgressEngine(timer=timer, ewma_tau=1e-9)
        engine.map_started("mc", 10)
        etas = []
        for _ in range(10):
            timer.advance(1.0)
            engine.shard_done("mc", SimpleNamespace(n_sims=1000))
            etas.append(engine.snapshot()["stages"][0]["eta_s"])
        # Steady 1000 sims/s, 1000-sim shards: ETA == remaining shards.
        assert etas[0] == pytest.approx(9.0, rel=0.01)
        assert etas[4] == pytest.approx(5.0, rel=0.01)
        assert etas[-1] == 0.0

    def test_replayed_prefix_counts_toward_completion_not_rate(self):
        timer = FakeTimer()
        engine = ProgressEngine(timer=timer, ewma_tau=1e-9)
        # Resume: 6 of 10 shards replay instantly from the ledger.
        engine.shards_replayed(
            "mc", [SimpleNamespace(n_sims=1000) for _ in range(6)]
        )
        engine.map_started("mc", 4)
        state = engine.snapshot()["stages"][0]
        assert state["shards_total"] == 10
        assert state["shards_replayed"] == 6
        assert state["fraction"] == pytest.approx(0.6)
        assert engine.snapshot()["sims_per_second"] == 0.0  # replays are free
        timer.advance(2.0)
        engine.shard_done("mc", SimpleNamespace(n_sims=1000))
        eta = engine.snapshot()["stages"][0]["eta_s"]
        # 3 shards left at 500 live sims/s -> ~6 s; replayed sims must not
        # have inflated the rate (which would predict a ~3x shorter ETA).
        assert eta == pytest.approx(6.0, rel=0.05)

    def test_empty_replay_is_a_no_op(self):
        engine = ProgressEngine(timer=FakeTimer())
        engine.shards_replayed("mc", [])
        assert engine.n_events == 0
        assert engine.snapshot()["stages"] == []


# ----------------------------------------------------------------------
# scoping (the service's per-job view)


class TestScoping:
    def test_scoped_stages_keep_separate_tallies(self):
        engine = ProgressEngine(timer=FakeTimer())
        with engine.scoped("job-a"):
            engine.shard_done("mc", SimpleNamespace(n_sims=10))
        with engine.scoped("job-b"):
            engine.shard_done("mc", SimpleNamespace(n_sims=20))
        a = engine.job_snapshot("job-a")
        b = engine.job_snapshot("job-b")
        assert [s["sims_live"] for s in a] == [10]
        assert [s["sims_live"] for s in b] == [20]
        assert engine.job_snapshot("job-c") == []

    def test_chain_diagnostics_keyed_by_scope(self):
        engine = ProgressEngine(timer=FakeTimer())
        with engine.scoped("job-a"):
            engine.chain_diagnostics(1.01, 432.0)
        chain = engine.snapshot()["chain"]
        assert chain == {"job-a": {"max_rhat": 1.01, "min_ess": 432.0}}


# ----------------------------------------------------------------------
# exposition round-trip


class TestExposition:
    def test_every_line_parses_and_values_round_trip(self, problem):
        recorder = telemetry.Recorder("expo")
        engine = ProgressEngine()
        with activate(engine), telemetry.activate(recorder):
            _mc(problem, n_workers=2, backend="thread")
        text = render_exposition(engine=engine, recorder=recorder)
        samples = parse_exposition(text)  # raises on any malformed line
        assert samples[("repro_up", ())] == 1.0
        assert samples[
            ("repro_shards_completed_total", (("stage", "mc"),))
        ] == 8.0
        assert samples[
            ("repro_sims_completed_total", (("stage", "mc"),))
        ] == 2000.0
        assert samples[
            ("repro_stage_progress_ratio", (("stage", "mc"),))
        ] == 1.0
        # Recorder counters ride along under the fixed metric families.
        recorder.count("custom.total", 5)
        recorder.gauge("custom.level", 2.5)
        samples = parse_exposition(
            render_exposition(engine=engine, recorder=recorder)
        )
        assert samples[
            ("repro_events_total", (("name", "custom.total"),))
        ] == 5.0
        assert samples[("repro_gauge", (("name", "custom.level"),))] == 2.5

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ValueError, match="bad sample"):
            parse_exposition("repro_up{ 1.0\n")
        with pytest.raises(ValueError):
            parse_exposition("repro_up one\n")

    def test_label_values_escaped(self):
        engine = ProgressEngine(timer=FakeTimer())
        with engine.scoped('job"with\\quotes'):
            engine.shard_done("mc", SimpleNamespace(n_sims=1))
        samples = parse_exposition(render_exposition(engine=engine))
        keys = [k for k in samples if k[0] == "repro_shards_completed_total"]
        assert keys, samples

    def test_extra_gauges_and_convergence_series(self, problem):
        engine = ProgressEngine()
        with activate(engine):
            _mc(problem, n_workers=2, backend="thread")
        samples = parse_exposition(
            render_exposition(engine=engine, extra_gauges={"repro_x": 3})
        )
        assert samples[("repro_x", ())] == 3.0
        assert ("repro_convergence_estimate", (("stage", "mc"),)) in samples
        assert (
            "repro_convergence_relative_error", (("stage", "mc"),)
        ) in samples


# ----------------------------------------------------------------------
# recorder percentiles (summary satellite)


class TestRecorderPercentiles:
    def test_p50_p95_on_dense_stream(self):
        recorder = telemetry.Recorder("pct")
        for value in range(1, 1001):
            recorder.observe("lat", float(value))
        pct = recorder.percentiles("lat")
        # The deterministic reservoir decimates, so percentiles are
        # approximate — but they must stay in the right neighbourhood.
        assert pct[0.5] == pytest.approx(500, rel=0.15)
        assert pct[0.95] == pytest.approx(950, rel=0.1)

    def test_summary_shows_percentiles(self):
        recorder = telemetry.Recorder("pct")
        for value in (1.0, 2.0, 3.0, 4.0):
            recorder.observe("lat", value)
        summary = recorder.summary()
        assert "p50=" in summary and "p95=" in summary

    def test_reservoir_survives_fold_round_trip(self):
        left, right = telemetry.Recorder("l"), telemetry.Recorder("r")
        for value in range(100):
            (left if value % 2 else right).observe("lat", float(value))
        left.fold(right.to_record())
        pct = left.percentiles("lat")
        assert pct[0.5] == pytest.approx(50, abs=15)


# ----------------------------------------------------------------------
# HTTP endpoints and the dashboard


class TestMetricsServer:
    def test_metrics_and_status_round_trip(self, problem):
        engine = ProgressEngine()
        recorder = telemetry.Recorder("srv")
        with activate(engine), telemetry.activate(recorder):
            _mc(problem, n_workers=2, backend="thread")
            with start_metrics_server(0) as server:
                with urllib.request.urlopen(
                    f"{server.url}/metrics", timeout=5
                ) as response:
                    assert "text/plain" in response.headers["Content-Type"]
                    text = response.read().decode("utf-8")
                status = fetch_status(server.url)
        samples = parse_exposition(text)
        assert samples[
            ("repro_shards_completed_total", (("stage", "mc"),))
        ] == 8.0
        assert status["snapshot"]["stages"][0]["shards_done"] == 8
        assert isinstance(status["counters"], dict)

    def test_unknown_route_404s(self):
        with start_metrics_server(0) as server:
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(f"{server.url}/nope", timeout=5)

    def test_obs_status_defaults_to_actives(self):
        engine = ProgressEngine(timer=FakeTimer())
        engine.shard_done("mc", SimpleNamespace(n_sims=5))
        with activate(engine):
            status = obs_status()
        assert status["snapshot"]["stages"][0]["sims_live"] == 5


class TestTopDashboard:
    def _status(self):
        engine = ProgressEngine(timer=FakeTimer())
        engine.map_started("mc", 8)
        for _ in range(3):
            engine.shard_done(
                "mc", SimpleNamespace(n_sims=100, n_failures=2, count=100)
            )
        return obs_status(engine=engine, recorder=None)

    def test_render_dashboard_is_pure_text(self):
        text = render_dashboard(self._status(), url="http://x:1")
        assert "mc" in text
        assert "3/8 shards" in text
        assert "[" in text and "]" in text  # the progress bar

    def test_run_top_over_live_server(self, problem, capsys):
        engine = ProgressEngine()
        with activate(engine):
            _mc(problem, n_workers=2, backend="thread")
            with start_metrics_server(0) as server:
                code = run_top(server.url, interval=0.01, iterations=2)
        assert code == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "mc" in out

    def test_run_top_unreachable_renders_error_frame(self, capsys):
        code = run_top(
            "http://127.0.0.1:9", interval=0.01, iterations=1
        )
        assert code == 0
        assert "unreachable" in capsys.readouterr().out


# ----------------------------------------------------------------------
# service integration: per-job progress and the /metrics route


class TestServiceObservability:
    QUERY = dict(
        problem="iread", method="MC", seed=11,
        n_second_stage=512, shard_size=128,
    )

    def test_jobs_carry_progress_and_metrics_served(self, tmp_path):
        from repro.service import YieldService, make_server

        with YieldService(cache_dir=tmp_path, n_job_workers=1) as service:
            assert get_active() is service.progress
            job = service.submit(dict(self.QUERY))
            service.result(job.id, timeout=120)
            status = service.status(job.id)
            assert status["state"] == "done"
            stages = {s["stage"]: s for s in status["progress"]}
            assert stages["mc"]["scope"] == job.id
            assert stages["mc"]["fraction"] == 1.0
            (listing,) = [
                s for s in service.jobs() if s["id"] == job.id
            ]
            assert listing["progress"] == status["progress"]

            server = make_server(service, port=0)
            thread = threading.Thread(
                target=server.serve_forever, daemon=True
            )
            thread.start()
            port = server.server_address[1]
            try:
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/metrics", timeout=5
                ) as response:
                    text = response.read().decode("utf-8")
                status = fetch_status(f"http://127.0.0.1:{port}")
            finally:
                server.shutdown()
                server.server_close()
                thread.join(timeout=5)
        samples = parse_exposition(text)
        assert samples[("repro_service_jobs_total", ())] == 1.0
        key = (
            "repro_shards_completed_total",
            (("job", job.id), ("stage", "mc")),
        )
        assert samples[key] == 4.0
        assert status["service"]["total_jobs"] == 1
        # Closing the service uninstalls its engine.
        assert get_active() is None

    def test_observability_false_installs_nothing(self, tmp_path):
        from repro.service import YieldService

        with YieldService(
            cache_dir=tmp_path, n_job_workers=1, observability=False
        ) as service:
            assert service.progress is None
            assert get_active() is None
            job = service.submit(dict(self.QUERY))
            service.result(job.id, timeout=120)
            assert "progress" not in service.status(job.id)


# ----------------------------------------------------------------------
# live scrape during a running remote estimate (the acceptance check)


class _SlowMetric:
    """Picklable metric wrapper that makes shards take real wall time."""

    def __init__(self, metric, dimension, delay):
        self.metric = metric
        self.dimension = dimension
        self.delay = delay

    def __call__(self, x):
        time.sleep(self.delay)
        return self.metric(x)


class TestLiveScrape:
    def test_mid_run_scrape_has_progress_and_fleet_series(self, problem):
        engine = ProgressEngine()
        slow = _SlowMetric(problem.metric, problem.dimension, 0.05)
        text = None
        with activate(engine):
            with start_metrics_server(0) as server, ParallelExecutor(
                backend="remote", min_workers=2, heartbeat=0.5
            ) as ex:
                threads = [_start_worker(ex.address) for _ in range(2)]
                done = threading.Event()

                def run():
                    try:
                        brute_force_monte_carlo(
                            slow, problem.spec, 4000,
                            dimension=problem.dimension, rng=9,
                            chunk_size=250, shard_size=250, executor=ex,
                        )
                    finally:
                        done.set()

                runner = threading.Thread(target=run, daemon=True)
                runner.start()
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline and not done.is_set():
                    with urllib.request.urlopen(
                        f"{server.url}/metrics", timeout=5
                    ) as response:
                        body = response.read().decode("utf-8")
                    if (
                        'repro_shards_completed_total{stage="mc"}' in body
                        and "repro_worker_heartbeat_age_seconds" in body
                        and "repro_convergence_estimate" in body
                    ):
                        text = body  # scraped while shards are in flight
                        break
                    time.sleep(0.02)
                runner.join(timeout=60)
        assert text is not None, "never caught the run in flight"
        samples = parse_exposition(text)
        families = {name for name, _ in samples}
        assert "repro_shards_completed_total" in families
        assert "repro_convergence_estimate" in families
        assert "repro_worker_heartbeat_age_seconds" in families
        assert "repro_workers_connected" in families
        for thread in threads:
            thread.join(timeout=5)
