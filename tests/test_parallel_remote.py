"""Tests for the socket transport backend (repro.parallel.remote).

Contract under test: ``backend="remote"`` is just another executor — the
merged result is bit-identical to serial/thread/process because shards
carry their own spawn-indexed streams — plus the elastic specifics: OOB
buffer framing, as-completed ``on_result`` streaming, worker loss and
shard reassignment, and graceful drain.
"""

import socket
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.mc.counter import CountedMetric
from repro.mc.montecarlo import brute_force_monte_carlo
from repro.parallel import (
    PROTOCOL_VERSION,
    ParallelExecutor,
    RemoteCoordinator,
    RemoteTaskError,
    run_worker,
)
from repro.parallel.remote import FramedConnection, parse_address
from repro.synthetic import LinearMetric


@pytest.fixture
def problem():
    return LinearMetric(np.array([1.0, 0.5]), 2.2).problem("halfspace")


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"shard {x} exploded")


def _boom_or_slow(task):
    if task == "boom":
        raise ValueError("shard exploded")
    time.sleep(0.8)
    return 42


def _slow_square(x):
    time.sleep(0.4)
    return x * x


def _start_worker(address, **kwargs):
    thread = threading.Thread(
        target=run_worker,
        args=(address[0], address[1]),
        kwargs=kwargs,
        daemon=True,
    )
    thread.start()
    return thread


class TestParseAddress:
    def test_string(self):
        assert parse_address("10.0.0.2:7341") == ("10.0.0.2", 7341)

    def test_tuple(self):
        assert parse_address(("h", "80")) == ("h", 80)

    def test_bad_string_raises(self):
        with pytest.raises(ValueError, match="host:port"):
            parse_address("7341")


class TestFramedConnection:
    def test_roundtrip_with_oob_arrays(self):
        left_sock, right_sock = socket.socketpair()
        left, right = FramedConnection(left_sock), FramedConnection(right_sock)
        try:
            payload = {
                "big": np.arange(100000, dtype=np.float64),
                "small": np.eye(3),
                "tag": "hello",
            }
            # A payload this size overflows the kernel socket buffer, so
            # the send must overlap the receive (as it does in real use).
            sender = threading.Thread(
                target=left.send, args=(("msg", payload),)
            )
            sender.start()
            kind, received = right.recv()
            sender.join(timeout=5)
            assert kind == "msg" and received["tag"] == "hello"
            np.testing.assert_array_equal(received["big"], payload["big"])
            np.testing.assert_array_equal(received["small"], payload["small"])
        finally:
            left.close()
            right.close()

    def test_many_messages_stay_ordered(self):
        left_sock, right_sock = socket.socketpair()
        left, right = FramedConnection(left_sock), FramedConnection(right_sock)
        try:
            for i in range(50):
                left.send(("n", i, np.full(10, i)))
            for i in range(50):
                kind, n, arr = right.recv()
                assert n == i and arr[0] == i
        finally:
            left.close()
            right.close()

    def test_peer_close_raises_connection_error(self):
        left_sock, right_sock = socket.socketpair()
        left, right = FramedConnection(left_sock), FramedConnection(right_sock)
        left.close()
        with pytest.raises((ConnectionError, OSError)):
            right.recv()
        right.close()


class TestCoordinator:
    def test_map_ordered_with_streaming_callback(self):
        with RemoteCoordinator(min_workers=2, heartbeat=0.5) as coord:
            threads = [_start_worker(coord.address) for _ in range(2)]
            seen = []
            results = coord.map(_square, [3, 1, 4, 1, 5], on_result=seen.append)
            assert results == [9, 1, 16, 1, 25]  # serial order
            assert sorted(seen) == sorted(results)  # completion order
            assert len(coord.dispatch_overhead_s) == 5
            assert all(o >= 0 for o in coord.dispatch_overhead_s)
        for thread in threads:
            thread.join(timeout=5)

    def test_empty_map(self):
        with RemoteCoordinator(min_workers=1, heartbeat=0.5) as coord:
            assert coord.map(_square, []) == []

    def test_worker_error_carries_remote_traceback(self):
        with RemoteCoordinator(min_workers=1, heartbeat=0.5) as coord:
            thread = _start_worker(coord.address)
            with pytest.raises(RemoteTaskError, match="exploded"):
                coord.map(_boom, [7])
        thread.join(timeout=5)

    def test_no_workers_times_out(self):
        with RemoteCoordinator(
            min_workers=1, heartbeat=0.2, connect_timeout=0.4
        ) as coord:
            with pytest.raises(RuntimeError, match="worker"):
                coord.map(_square, [1])

    def test_version_mismatch_rejected(self):
        with RemoteCoordinator(min_workers=1, heartbeat=0.5) as coord:
            sock = socket.create_connection(coord.address, timeout=5)
            conn = FramedConnection(sock)
            conn.send(("hello", PROTOCOL_VERSION + 1, {}))
            reply = conn.recv()
            assert reply[0] == "reject"
            conn.close()
            assert coord.n_workers() == 0

    def test_lost_worker_shard_is_reassigned(self):
        """A worker that dies mid-shard never loses the shard."""
        with RemoteCoordinator(min_workers=2, heartbeat=0.5) as coord:
            # Fake worker: joins first, accepts exactly one task, dies.
            def fake_worker():
                sock = socket.create_connection(coord.address, timeout=5)
                conn = FramedConnection(sock)
                conn.send(("hello", PROTOCOL_VERSION, {"fake": True}))
                assert conn.recv()[0] == "welcome"
                message = conn.recv()  # the task
                assert message[0] == "task"
                conn.close()  # die without answering

            fake = threading.Thread(target=fake_worker, daemon=True)
            fake.start()
            coord.wait_for_workers(1)
            real = _start_worker(coord.address)
            results = coord.map(_square, [2, 3, 4])
            assert results == [4, 9, 16]
            assert coord.n_workers() == 1  # the fake one was marked dead
        fake.join(timeout=5)
        real.join(timeout=5)

    def test_aborted_map_leftovers_do_not_corrupt_next_map(self):
        """A shard in flight when a map aborts must not leak its result
        into a later map on the same coordinator."""
        with RemoteCoordinator(min_workers=2, heartbeat=0.5) as coord:
            threads = [_start_worker(coord.address) for _ in range(2)]
            with pytest.raises(RemoteTaskError, match="exploded"):
                # One worker errors instantly; the other is still busy
                # with the slow shard when the error aborts the map.
                coord.map(_boom_or_slow, ["boom", "slow"])
            # The slow shard's stale result arrives mid-way through this
            # map (its tasks are slow enough to keep it running past the
            # leftover); it must be discarded, not merged or counted.
            results = coord.map(_slow_square, [5, 6, 7])
            assert results == [25, 36, 49]
            assert coord.n_workers() == 2  # nobody was wrongly declared dead
        for thread in threads:
            thread.join(timeout=5)

    def test_duplicate_completion_counts_once(self):
        """The reassignment race: a presumed-dead worker's result for an
        already-completed shard is discarded, never double-merged."""
        with RemoteCoordinator(min_workers=1, heartbeat=5.0) as coord:
            def worker_answering_twice():
                sock = socket.create_connection(coord.address, timeout=5)
                conn = FramedConnection(sock)
                conn.send(("hello", PROTOCOL_VERSION, {}))
                assert conn.recv()[0] == "welcome"
                for _ in range(3):
                    message = conn.recv()
                    assert message[0] == "task"
                    _, tid, fn, task = message
                    conn.send(("result", tid, fn(task), 0.0))
                    # Duplicate completion with a poisoned payload: the
                    # coordinator must keep the first copy only.
                    conn.send(("result", tid, -1, 0.0))
                conn.close()

            thread = threading.Thread(target=worker_answering_twice, daemon=True)
            thread.start()
            seen = []
            results = coord.map(_square, [2, 3, 4], on_result=seen.append)
            assert results == [4, 9, 16]
            assert seen == [4, 9, 16]  # on_result fired exactly once per shard
            assert len(coord.dispatch_overhead_s) == 3
        thread.join(timeout=5)

    def test_late_worker_can_join_running_map(self):
        with RemoteCoordinator(
            min_workers=1, heartbeat=0.5, connect_timeout=30
        ) as coord:
            first = _start_worker(coord.address)
            late_started = threading.Event()

            def start_late():
                time.sleep(0.3)
                _start_worker(coord.address)
                late_started.set()

            threading.Thread(target=start_late, daemon=True).start()
            results = coord.map(_square, list(range(20)))
            assert results == [i * i for i in range(20)]
            late_started.wait(timeout=5)
        first.join(timeout=5)


class TestRemoteExecutor:
    def test_properties(self):
        ex = ParallelExecutor(backend="remote", min_workers=2)
        assert not ex.runs_inline
        assert ex.cross_process
        assert not ex.supports_shm

    def test_address_requires_remote_backend(self):
        with pytest.raises(AttributeError, match="remote"):
            ParallelExecutor(n_workers=2, backend="thread").address

    def test_mc_bit_identical_to_serial(self, problem):
        reference = brute_force_monte_carlo(
            problem.metric, problem.spec, 3000,
            dimension=problem.dimension, rng=9,
            chunk_size=250, shard_size=250, n_workers=1, backend="serial",
        )
        counted = CountedMetric(problem.metric, problem.dimension)
        with ParallelExecutor(
            backend="remote", min_workers=2, heartbeat=0.5
        ) as ex:
            threads = [_start_worker(ex.address) for _ in range(2)]
            remote = brute_force_monte_carlo(
                counted, problem.spec, 3000,
                dimension=problem.dimension, rng=9,
                chunk_size=250, shard_size=250, executor=ex,
            )
        assert remote.failure_probability == reference.failure_probability
        np.testing.assert_array_equal(
            remote.trace.estimate, reference.trace.estimate
        )
        # cross_process: counts come home inside shard results and fold.
        assert counted.count == 3000
        hosts = remote.extras["worker_hosts"]
        assert sum(h["n_shards"] for h in hosts) == 12
        for thread in threads:
            thread.join(timeout=5)

    def test_remote_run_feeds_checkpoint_ledger(self, problem, tmp_path):
        """Socket backend + ledger: kill-free end-to-end resume check."""
        with ParallelExecutor(
            backend="remote", min_workers=2, heartbeat=0.5
        ) as ex:
            threads = [_start_worker(ex.address) for _ in range(2)]
            first = brute_force_monte_carlo(
                problem.metric, problem.spec, 2000,
                dimension=problem.dimension, rng=9,
                chunk_size=250, shard_size=250, executor=ex,
                checkpoint_dir=tmp_path,
            )
        for thread in threads:
            thread.join(timeout=5)
        assert first.extras["resume"]["shards_recorded"] == 8
        # Resume locally: the socket run's shards replay bit-identically.
        counted = CountedMetric(problem.metric, problem.dimension)
        resumed = brute_force_monte_carlo(
            counted, problem.spec, 2000,
            dimension=problem.dimension, rng=9,
            chunk_size=250, shard_size=250, n_workers=2, backend="thread",
            checkpoint_dir=tmp_path,
        )
        assert counted.count == 0
        assert resumed.failure_probability == first.failure_probability
        np.testing.assert_array_equal(
            resumed.trace.estimate, first.trace.estimate
        )


class TestWorkerCli:
    def test_cli_worker_serves_a_map(self, problem):
        """`python -m repro worker` end-to-end over a real subprocess."""
        import os

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")])
        )
        with ParallelExecutor(
            backend="remote", min_workers=1, heartbeat=0.5
        ) as ex:
            host, port = ex.address
            proc = subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "worker",
                    "--connect", f"{host}:{port}", "--retries", "10",
                ],
                env=env, cwd=os.getcwd(),
            )
            try:
                result = brute_force_monte_carlo(
                    problem.metric, problem.spec, 1000,
                    dimension=problem.dimension, rng=3,
                    chunk_size=250, shard_size=250, executor=ex,
                )
            finally:
                ex.close()
                proc.wait(timeout=30)
        reference = brute_force_monte_carlo(
            problem.metric, problem.spec, 1000,
            dimension=problem.dimension, rng=3,
            chunk_size=250, shard_size=250, n_workers=1, backend="serial",
        )
        assert proc.returncode == 0
        assert result.failure_probability == reference.failure_probability
