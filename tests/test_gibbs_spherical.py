"""Tests for the spherical Gibbs chain (repro.gibbs.spherical)."""

import math

import numpy as np
import pytest
from scipy import stats

from repro.gibbs.coordinates import initial_spherical_coordinates
from repro.gibbs.spherical import SphericalGibbs
from repro.mc.indicator import FailureSpec
from repro.synthetic import AnnularArcMetric, QuadrantMetric, SphereTailMetric
from repro.gibbs.cartesian import CartesianGibbs

SPEC = FailureSpec(0.0, fail_below=True)


class TestChainMechanics:
    def quadrant_sampler(self, **kw):
        return SphericalGibbs(QuadrantMetric(np.zeros(2)), SPEC, **kw)

    def start(self):
        return initial_spherical_coordinates(np.array([1.0, 1.0]))

    def test_samples_shape(self, rng):
        r0, a0 = self.start()
        chain = self.quadrant_sampler().run(r0, a0, 60, rng)
        assert chain.samples.shape == (60, 2)

    def test_samples_stay_in_failure_region(self, rng):
        r0, a0 = self.start()
        chain = self.quadrant_sampler().run(r0, a0, 300, rng)
        assert np.all(chain.samples >= -1e-9)

    def test_bad_start_raises(self, rng):
        with pytest.raises(ValueError, match="not in the failure region"):
            self.quadrant_sampler().run(2.0, np.array([-1.0, -1.0]), 10, rng)

    def test_invalid_r0_raises(self, rng):
        with pytest.raises(ValueError, match="r0"):
            self.quadrant_sampler().run(-1.0, np.array([1.0, 1.0]), 10, rng)

    def test_wrong_alpha_dimension_raises(self, rng):
        with pytest.raises(ValueError, match="dimension"):
            self.quadrant_sampler().run(1.0, np.ones(3), 10, rng)

    def test_deterministic(self):
        r0, a0 = self.start()
        sampler = self.quadrant_sampler()
        a = sampler.run(r0, a0, 25, np.random.default_rng(9))
        b = sampler.run(r0, a0, 25, np.random.default_rng(9))
        np.testing.assert_array_equal(a.samples, b.samples)

    def test_default_alpha_depth_deeper(self):
        sampler = self.quadrant_sampler(bisect_iters=5)
        assert sampler.alpha_bisect_iters == 8

    def test_epsilon_start_not_frozen(self, rng):
        """Regression: starting from the Eq.-32 initialisation
        (||alpha|| ~ 1e-2), the chain's orientation must still move —
        per-sweep renormalisation restores slice visibility."""
        r0, a0 = initial_spherical_coordinates(
            np.array([1.0, 1.0]), epsilon=1e-2
        )
        chain = self.quadrant_sampler().run(r0, a0, 200, rng)
        angles = np.arctan2(chain.samples[:, 1], chain.samples[:, 0])
        assert angles.std() > 0.1

    def test_frozen_without_normalization(self, rng):
        """Documented pathology: on a *narrow* angular failure region the
        microscopic Eq.-32 alpha scale makes the orientation slices
        invisible to the binary search, freezing the direction.  (On wide
        regions like the quadrant, whose slices extend to the clamp, the
        chain survives even without renormalisation.)"""
        metric = AnnularArcMetric(
            radius=3.0, center_angle=math.pi / 4, half_width=math.radians(20)
        )
        start = 3.3 * np.array([math.cos(math.pi / 4), math.sin(math.pi / 4)])
        r0, a0 = initial_spherical_coordinates(start, epsilon=1e-3)
        sampler = SphericalGibbs(metric, SPEC, normalize_each_sweep=False)
        chain = sampler.run(r0, a0, 120, rng)
        angles = np.arctan2(chain.samples[:, 1], chain.samples[:, 0])
        assert angles.std() < 1e-6
        # With renormalisation the same chain mixes over the arc.
        fixed = SphericalGibbs(metric, SPEC, normalize_each_sweep=True)
        chain2 = fixed.run(r0, a0, 120, rng)
        angles2 = np.arctan2(chain2.samples[:, 1], chain2.samples[:, 0])
        assert angles2.std() > 0.05


class TestStationaryDistribution:
    def test_sphere_tail_radius_marginal(self, rng):
        """On {||x|| >= r0}, g_opt's radius marginal is Chi(M) truncated to
        [r0, inf) and the orientation is uniform."""
        metric = SphereTailMetric(radius=2.5, dimension=2)
        sampler = SphericalGibbs(metric, SPEC, bisect_iters=12)
        r0, a0 = initial_spherical_coordinates(np.array([2.8, 0.0]))
        chain = sampler.run(r0, a0, 4000, rng)
        radii = np.linalg.norm(chain.samples, axis=1)
        assert np.all(radii >= 2.5 - 1e-6)
        frozen = stats.chi(2)
        def trunc_cdf(r):
            tail = 1.0 - frozen.cdf(2.5)
            return np.clip((frozen.cdf(r) - frozen.cdf(2.5)) / tail, 0, 1)
        ks = stats.kstest(radii, trunc_cdf)
        assert ks.pvalue > 1e-5

    def test_sphere_tail_orientation_coverage(self, rng):
        """A full shell fails at every angle: the chain must cover (most of)
        the circle, not hug its starting direction."""
        metric = SphereTailMetric(radius=2.5, dimension=2)
        sampler = SphericalGibbs(metric, SPEC)
        r0, a0 = initial_spherical_coordinates(np.array([2.8, 0.0]))
        chain = sampler.run(r0, a0, 2000, rng)
        angles = np.arctan2(chain.samples[:, 1], chain.samples[:, 0])
        # At least three of the four quadrants visited.
        quadrant_counts = np.histogram(angles, bins=4, range=(-np.pi, np.pi))[0]
        assert np.count_nonzero(quadrant_counts) >= 3


class TestArcTraversal:
    """The Fig. 14 comparison: on an arc-shaped region the spherical chain
    travels along the probability contour while the Cartesian chain stays
    trapped near its starting end."""

    def setup_problem(self):
        # 140-degree arc at radius 3.5, centred at 45 degrees.
        return AnnularArcMetric(
            radius=3.5, center_angle=math.pi / 4, half_width=math.radians(70)
        )

    def angular_spread(self, samples):
        angles = np.arctan2(samples[:, 1], samples[:, 0])
        return angles.max() - angles.min()

    def test_spherical_covers_arc(self, rng):
        metric = self.setup_problem()
        start = 3.7 * np.array(
            [math.cos(math.pi / 4 - 1.1), math.sin(math.pi / 4 - 1.1)]
        )
        assert metric(start[np.newaxis, :])[0] < 0  # failing start, one end
        r0, a0 = initial_spherical_coordinates(start)
        chain = SphericalGibbs(metric, SPEC).run(r0, a0, 600, rng)
        assert self.angular_spread(chain.samples) > 1.5  # radians

    def test_cartesian_narrower_than_spherical(self, rng):
        metric = self.setup_problem()
        start = 3.7 * np.array(
            [math.cos(math.pi / 4 - 1.1), math.sin(math.pi / 4 - 1.1)]
        )
        r0, a0 = initial_spherical_coordinates(start)
        spherical = SphericalGibbs(metric, SPEC).run(r0, a0, 400, rng)
        cartesian = CartesianGibbs(metric, SPEC).run(start, 400, rng)
        assert (
            self.angular_spread(cartesian.samples)
            < self.angular_spread(spherical.samples)
        )
