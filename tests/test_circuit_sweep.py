"""Tests for DC sweeps (repro.circuit.sweep)."""

import numpy as np
import pytest

from repro.circuit import Circuit, dc_sweep
from repro.devices.mosfet import NMOS, PMOS, MosfetParams

NPARAMS = MosfetParams(polarity=NMOS, vth=0.35, beta=9e-4, n=1.35)
PPARAMS = MosfetParams(polarity=PMOS, vth=0.35, beta=1.5e-4, n=1.45)


def inverter():
    c = Circuit("inv")
    c.add_mosfet("mn", NPARAMS, drain="out", gate="in", source="0")
    c.add_mosfet("mp", PPARAMS, drain="out", gate="in", source="vdd", bulk="vdd")
    return c


class TestDcSweep:
    def test_shapes(self):
        out = dc_sweep(
            inverter(), "in", np.linspace(0, 1.2, 13), {"vdd": 1.2}, ["out"]
        )
        assert out["out"].shape == (13,)
        assert out["converged"].shape == (13,)
        assert np.all(out["converged"])

    def test_vtc_monotone(self):
        out = dc_sweep(
            inverter(), "in", np.linspace(0, 1.2, 61), {"vdd": 1.2}, ["out"]
        )
        assert np.all(np.diff(out["out"]) < 1e-9)

    def test_batched_element_params(self):
        dv = np.array([-0.05, 0.05])
        out = dc_sweep(
            inverter(), "in", np.linspace(0, 1.2, 7), {"vdd": 1.2}, ["out"],
            element_params={"mn": {"delta_vth": dv}},
        )
        assert out["out"].shape == (7, 2)
        # Higher NMOS vth -> weaker pull-down -> higher output everywhere
        # the NMOS conducts.
        mid = out["out"][3]
        assert mid[1] > mid[0]

    def test_empty_sweep_raises(self):
        with pytest.raises(ValueError, match="non-empty"):
            dc_sweep(inverter(), "in", [], {"vdd": 1.2}, ["out"])

    def test_2d_sweep_raises(self):
        with pytest.raises(ValueError):
            dc_sweep(inverter(), "in", np.zeros((2, 2)), {"vdd": 1.2}, ["out"])

    def test_matches_pointwise_solves(self):
        from repro.circuit import solve_dc

        grid = np.linspace(0, 1.2, 9)
        swept = dc_sweep(inverter(), "in", grid, {"vdd": 1.2}, ["out"])["out"]
        single = np.array(
            [float(solve_dc(inverter(), {"vdd": 1.2, "in": v}).voltage("out"))
             for v in grid]
        )
        np.testing.assert_allclose(swept, single, atol=1e-8)
