"""Cross-cutting property-based invariants (hypothesis).

Invariants that tie modules together, complementing the per-module tests:
spec/indicator consistency, weight non-negativity, spherical-mapping
geometry, and estimator scale-equivariance.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.gibbs.coordinates import spherical_to_cartesian
from repro.mc.importance import importance_weights
from repro.mc.indicator import FailureSpec
from repro.stats.mvnormal import MultivariateNormal

finite_floats = st.floats(-50.0, 50.0)


class TestSpecInvariants:
    @given(
        st.floats(-5.0, 5.0),
        st.booleans(),
        hnp.arrays(np.float64, st.integers(1, 20), elements=finite_floats),
    )
    @settings(max_examples=60, deadline=None)
    def test_indicator_iff_negative_margin(self, threshold, fail_below, values):
        spec = FailureSpec(threshold, fail_below=fail_below)
        indicator = spec.indicator(values)
        margin = spec.margin(values)
        np.testing.assert_array_equal(indicator, margin < 0)

    @given(st.floats(-5.0, 5.0), st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_margin_antisymmetric_under_direction_flip(self, threshold, fail_below):
        values = np.linspace(threshold - 2, threshold + 2, 11)
        a = FailureSpec(threshold, fail_below=fail_below).margin(values)
        b = FailureSpec(threshold, fail_below=not fail_below).margin(values)
        np.testing.assert_allclose(a, -b)


class TestWeightInvariants:
    @given(st.integers(1, 6), st.integers(2, 40), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_weights_nonnegative_and_zero_iff_passing(self, dim, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((n, dim))
        fail = rng.uniform(size=n) < 0.5
        nominal = MultivariateNormal.standard(dim)
        proposal = MultivariateNormal(rng.standard_normal(dim), np.eye(dim))
        w = importance_weights(x, fail, proposal, nominal)
        assert np.all(w >= 0)
        np.testing.assert_array_equal(w == 0, ~fail)


class TestSphericalInvariants:
    @given(
        st.integers(2, 10),
        st.floats(0.1, 10.0),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_radius_and_direction(self, dim, radius, seed):
        rng = np.random.default_rng(seed)
        alpha = rng.standard_normal(dim)
        x = spherical_to_cartesian(radius, alpha)[0]
        assert np.linalg.norm(x) == pytest.approx(radius, rel=1e-9)
        cos = x @ alpha / (np.linalg.norm(x) * np.linalg.norm(alpha))
        assert cos == pytest.approx(1.0, abs=1e-9)


class TestEstimatorEquivariance:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_importance_estimate_invariant_to_weight_bookkeeping(self, seed):
        """mean(w) must equal (sum over failing) / n regardless of how many
        passing samples interleave."""
        rng = np.random.default_rng(seed)
        n = 500
        x = rng.standard_normal((n, 2)) + np.array([3.0, 0.0])
        fail = x[:, 0] > 3.0
        nominal = MultivariateNormal.standard(2)
        proposal = MultivariateNormal(np.array([3.0, 0.0]), np.eye(2))
        w = importance_weights(x, fail, proposal, nominal)
        direct = w[fail].sum() / n
        assert w.mean() == pytest.approx(direct, rel=1e-12)
