"""Tests for the MC framework: indicator, counter, results (repro.mc)."""

import math

import numpy as np
import pytest

from repro.mc.counter import CountedMetric
from repro.mc.indicator import FailureSpec
from repro.mc.results import ConvergenceTrace, EstimationResult
from repro.stats.confidence import Z_99


class TestFailureSpec:
    def test_fail_below(self):
        spec = FailureSpec(0.1)
        np.testing.assert_array_equal(
            spec.indicator(np.array([0.05, 0.1, 0.2])), [True, False, False]
        )

    def test_fail_above(self):
        spec = FailureSpec(1.0, fail_below=False)
        np.testing.assert_array_equal(
            spec.indicator(np.array([0.5, 1.5])), [False, True]
        )

    def test_margin_sign_convention(self):
        spec = FailureSpec(0.1)
        assert spec.margin(np.array([0.2]))[0] > 0   # pass
        assert spec.margin(np.array([0.05]))[0] < 0  # fail

    def test_margin_fail_above(self):
        spec = FailureSpec(2.0, fail_below=False)
        assert spec.margin(np.array([1.0]))[0] > 0
        assert spec.margin(np.array([3.0]))[0] < 0

    def test_margin_zero_at_threshold(self):
        spec = FailureSpec(0.42)
        assert spec.margin(np.array([0.42]))[0] == 0.0

    def test_str(self):
        assert "<" in str(FailureSpec(1.0))
        assert ">" in str(FailureSpec(1.0, fail_below=False))


class TestCountedMetric:
    def metric(self):
        def f(x):
            return x.sum(axis=1)

        return CountedMetric(f, dimension=3)

    def test_counts_rows(self):
        m = self.metric()
        m(np.zeros((5, 3)))
        m(np.zeros((2, 3)))
        assert m.count == 7

    def test_single_point_counts_one(self):
        m = self.metric()
        m(np.zeros(3))
        assert m.count == 1

    def test_checkpoint_and_reset(self):
        m = self.metric()
        m(np.zeros((4, 3)))
        assert m.checkpoint() == 4
        m.reset()
        assert m.count == 0

    def test_values_passthrough(self):
        m = self.metric()
        out = m(np.ones((2, 3)))
        np.testing.assert_array_equal(out, [3.0, 3.0])

    def test_dimension_from_metric_attribute(self):
        class WithDim:
            dimension = 4

            def __call__(self, x):
                return x[:, 0]

        m = CountedMetric(WithDim())
        assert m.dimension == 4

    def test_missing_dimension_raises(self):
        with pytest.raises(ValueError, match="dimension"):
            CountedMetric(lambda x: x[:, 0])

    def test_repr(self):
        assert "simulations" in repr(self.metric())

    def test_add_external_totals_match_serial(self):
        """Folding worker tallies must equal having evaluated locally."""
        serial = self.metric()
        serial(np.zeros((5, 3)))
        serial(np.zeros((7, 3)))
        parent = self.metric()
        parent(np.zeros((5, 3)))
        # The second batch ran in a worker: only its tally comes home.
        parent.add_external(7, calls=1)
        assert parent.count == serial.count == 12
        assert parent.calls == serial.calls == 2

    def test_add_external_default_calls(self):
        m = self.metric()
        m.add_external(3)
        assert m.count == 3 and m.calls == 0

    def test_add_external_rejects_negative(self):
        m = self.metric()
        with pytest.raises(ValueError, match="non-negative"):
            m.add_external(-1)
        with pytest.raises(ValueError, match="non-negative"):
            m.add_external(1, calls=-2)

    def test_concurrent_counting_is_exact(self):
        """Thread-backend shard workers share one instance; the lock must
        keep the read-modify-write increments from losing counts."""
        from concurrent.futures import ThreadPoolExecutor

        m = self.metric()
        batch = np.zeros((3, 3))

        def hammer(_):
            for _ in range(200):
                m(batch)
                m.add_external(2, calls=1)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(hammer, range(8)))
        assert m.count == 8 * 200 * (3 + 2)
        assert m.calls == 8 * 200 * 2

    def test_pickle_roundtrip_recreates_lock(self):
        """Process workers receive pickled copies; the lock must not block
        pickling and the copy must count independently."""
        import pickle

        from repro.synthetic import LinearMetric

        m = CountedMetric(LinearMetric(np.ones(3), 1.0))
        m(np.zeros((4, 3)))
        clone = pickle.loads(pickle.dumps(m))
        clone(np.zeros((2, 3)))
        clone.add_external(1)
        assert clone.count == 7 and m.count == 4


class TestConvergenceTrace:
    def test_from_weights_running_mean(self):
        w = np.array([0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0])
        trace = ConvergenceTrace.from_weights(w, n_points=8)
        # Final recorded estimate approaches the true mean 0.5.
        assert trace.estimate[-1] == pytest.approx(np.mean(w[: trace.n_samples[-1]]))

    def test_relative_error_definition(self, rng):
        w = rng.exponential(size=500)
        trace = ConvergenceTrace.from_weights(w, n_points=500)
        n = trace.n_samples[-1]
        sub = w[:n]
        expected = Z_99 * sub.std(ddof=1) / math.sqrt(n) / sub.mean()
        assert trace.relative_error[-1] == pytest.approx(expected, rel=1e-9)

    def test_error_inf_before_first_failure(self):
        w = np.concatenate([np.zeros(50), np.ones(50)])
        trace = ConvergenceTrace.from_weights(w, n_points=100)
        early = trace.n_samples < 50
        assert np.all(np.isinf(trace.relative_error[early]))

    def test_too_few_weights_raises(self):
        with pytest.raises(ValueError):
            ConvergenceTrace.from_weights(np.array([1.0]))

    def test_samples_to_error_requires_staying_below(self):
        trace = ConvergenceTrace(
            n_samples=np.array([10, 20, 30, 40]),
            estimate=np.ones(4),
            relative_error=np.array([0.04, 0.90, 0.04, 0.03]),
        )
        # The dip at n=10 does not count: error rises above target later.
        assert trace.samples_to_error(0.05) == 30

    def test_samples_to_error_never_reached(self):
        trace = ConvergenceTrace(
            n_samples=np.array([10, 20]),
            estimate=np.ones(2),
            relative_error=np.array([0.5, 0.4]),
        )
        assert trace.samples_to_error(0.05) is None


class TestEstimationResult:
    def make(self):
        return EstimationResult(
            method="X",
            failure_probability=1e-5,
            relative_error=0.05,
            n_first_stage=100,
            n_second_stage=900,
        )

    def test_total(self):
        assert self.make().n_total == 1000

    def test_summary_contains_fields(self):
        s = self.make().summary()
        assert "X" in s and "1.000e-05" in s and "5.00%" in s

    def test_summary_with_inf_error(self):
        r = self.make()
        r.relative_error = math.inf
        assert "inf" in r.summary()
