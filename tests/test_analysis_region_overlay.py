"""Additional tests for region rendering overlays (repro.analysis.region)."""

import numpy as np

from repro.analysis.region import ascii_region, map_failure_region
from repro.synthetic import QuadrantMetric


def quadrant_map():
    prob = QuadrantMetric(np.array([1.0, 1.0])).problem()
    return map_failure_region(prob, extent=4.0, n_grid=41)


class TestAsciiOverlay:
    def test_overlay_points_rendered(self):
        ax, ay, fail = quadrant_map()
        pts = np.array([[2.0, 2.0], [3.0, 3.0]])
        art = ascii_region(ax, ay, fail, overlay_points=pts, width=41, height=21)
        assert art.count("*") >= 1

    def test_empty_overlay_accepted(self):
        ax, ay, fail = quadrant_map()
        art = ascii_region(ax, ay, fail, overlay_points=np.zeros((0, 2)))
        assert "*" not in art

    def test_origin_marker(self):
        ax, ay, fail = quadrant_map()
        art = ascii_region(ax, ay, fail, width=41, height=21)
        assert "+" in art

    def test_row_orientation(self):
        """Second variable increases upward: for the upper-right quadrant
        region, the top row must contain more '#' than the bottom row."""
        ax, ay, fail = quadrant_map()
        lines = ascii_region(ax, ay, fail, width=41, height=21).splitlines()
        assert lines[0].count("#") > lines[-1].count("#")

    def test_out_of_range_overlay_clipped(self):
        ax, ay, fail = quadrant_map()
        pts = np.array([[99.0, 99.0]])
        art = ascii_region(ax, ay, fail, overlay_points=pts, width=21, height=11)
        # Clipped into the last cell rather than crashing.
        assert isinstance(art, str)


class TestMapSliceVariables:
    def test_variable_pair_selects_axes(self):
        """With corner (1, 10) only variable 0 can fail within extent 4, so
        slicing the (0, 1) pair shows no failures but slicing (0, 0)-style
        fixed values would."""
        prob = QuadrantMetric(np.array([1.0, 10.0])).problem()
        _, _, fail = map_failure_region(prob, extent=4.0, n_grid=21)
        assert not fail.any()

    def test_fixed_values_offset(self):
        prob = QuadrantMetric(np.array([1.0, 1.0, 1.0])).problem()
        # Hold the third variable deep in its failing range.
        _, _, fail_ok = map_failure_region(
            prob, extent=4.0, n_grid=21, variable_pair=(0, 1), fixed_values=3.0
        )
        # Hold it in its passing range: nothing can fail.
        _, _, fail_none = map_failure_region(
            prob, extent=4.0, n_grid=21, variable_pair=(0, 1), fixed_values=-3.0
        )
        assert fail_ok.any()
        assert not fail_none.any()
