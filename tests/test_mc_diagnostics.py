"""Tests for importance-weight diagnostics (repro.mc.diagnostics)."""

import numpy as np
import pytest

from repro.mc.diagnostics import diagnose_weights


class TestDiagnoseWeights:
    def test_uniform_weights_full_efficiency(self):
        d = diagnose_weights(np.full(100, 0.5))
        assert d.effective_sample_size == pytest.approx(100.0)
        assert d.efficiency == pytest.approx(1.0)
        assert d.healthy

    def test_zeros_excluded(self):
        w = np.concatenate([np.zeros(900), np.full(100, 2.0)])
        d = diagnose_weights(w)
        assert d.n_weights == 100
        assert d.effective_sample_size == pytest.approx(100.0)

    def test_single_dominant_weight_degenerate(self):
        w = np.concatenate([np.full(50, 1e-8), [1.0]])
        d = diagnose_weights(w)
        assert d.max_weight_fraction > 0.99
        assert not d.healthy

    def test_all_zero(self):
        d = diagnose_weights(np.zeros(10))
        assert d.n_weights == 0
        assert d.efficiency == 0.0
        assert not d.healthy

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            diagnose_weights(np.array([1.0, -0.1]))

    def test_ess_formula(self, rng):
        w = rng.exponential(size=500)
        d = diagnose_weights(w)
        expected = w.sum() ** 2 / np.sum(w * w)
        assert d.effective_sample_size == pytest.approx(expected)

    def test_summary_text(self):
        good = diagnose_weights(np.full(64, 1.0))
        assert "healthy" in good.summary()
        bad = diagnose_weights(np.array([1.0] + [1e-9] * 5))
        assert "DEGENERATE" in bad.summary()

    def test_good_proposal_beats_bad_on_real_flow(self):
        """End-to-end: weights from a matched proposal diagnose healthier
        than from a mean-only proposal on a stretched failure region."""
        from repro.mc.importance import importance_weights
        from repro.stats.mvnormal import MultivariateNormal
        from repro.synthetic import LinearMetric

        rng = np.random.default_rng(0)
        metric = LinearMetric(np.array([1.0, 0.0]), 4.0)
        nominal = MultivariateNormal.standard(2)
        good = MultivariateNormal(
            np.array([4.3, 0.0]), np.diag([0.1, 1.0])
        )
        bad = MultivariateNormal(np.array([6.5, 0.0]), 0.05 * np.eye(2))
        out = {}
        for label, proposal in (("good", good), ("bad", bad)):
            x = proposal.sample(4000, rng)
            fail = metric(x) < 0
            w = importance_weights(x, fail, proposal, nominal)
            out[label] = diagnose_weights(w)
        assert out["good"].efficiency > out["bad"].efficiency
