"""Tests for importance-weight diagnostics (repro.mc.diagnostics)."""

import numpy as np
import pytest

from repro.mc.diagnostics import diagnose_weights


class TestDiagnoseWeights:
    def test_uniform_weights_full_efficiency(self):
        d = diagnose_weights(np.full(100, 0.5))
        assert d.effective_sample_size == pytest.approx(100.0)
        assert d.efficiency == pytest.approx(1.0)
        assert d.healthy

    def test_zeros_excluded(self):
        w = np.concatenate([np.zeros(900), np.full(100, 2.0)])
        d = diagnose_weights(w)
        assert d.n_weights == 100
        assert d.effective_sample_size == pytest.approx(100.0)

    def test_single_dominant_weight_degenerate(self):
        w = np.concatenate([np.full(50, 1e-8), [1.0]])
        d = diagnose_weights(w)
        assert d.max_weight_fraction > 0.99
        assert not d.healthy

    def test_all_zero(self):
        d = diagnose_weights(np.zeros(10))
        assert d.n_weights == 0
        assert d.efficiency == 0.0
        assert not d.healthy

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            diagnose_weights(np.array([1.0, -0.1]))

    def test_ess_formula(self, rng):
        w = rng.exponential(size=500)
        d = diagnose_weights(w)
        expected = w.sum() ** 2 / np.sum(w * w)
        assert d.effective_sample_size == pytest.approx(expected)

    def test_summary_text(self):
        good = diagnose_weights(np.full(64, 1.0))
        assert "healthy" in good.summary()
        bad = diagnose_weights(np.array([1.0] + [1e-9] * 5))
        assert "DEGENERATE" in bad.summary()

    def test_good_proposal_beats_bad_on_real_flow(self):
        """End-to-end: weights from a matched proposal diagnose healthier
        than from a mean-only proposal on a stretched failure region."""
        from repro.mc.importance import importance_weights
        from repro.stats.mvnormal import MultivariateNormal
        from repro.synthetic import LinearMetric

        rng = np.random.default_rng(0)
        metric = LinearMetric(np.array([1.0, 0.0]), 4.0)
        nominal = MultivariateNormal.standard(2)
        good = MultivariateNormal(
            np.array([4.3, 0.0]), np.diag([0.1, 1.0])
        )
        bad = MultivariateNormal(np.array([6.5, 0.0]), 0.05 * np.eye(2))
        out = {}
        for label, proposal in (("good", good), ("bad", bad)):
            x = proposal.sample(4000, rng)
            fail = metric(x) < 0
            w = importance_weights(x, fail, proposal, nominal)
            out[label] = diagnose_weights(w)
        assert out["good"].efficiency > out["bad"].efficiency


class TestGelmanRubin:
    def test_iid_chains_near_one(self, rng):
        from repro.mc.diagnostics import gelman_rubin

        chains = rng.standard_normal((4, 400, 3))
        rhat = gelman_rubin(chains)
        assert rhat.shape == (3,)
        assert np.all(rhat < 1.05)

    def test_separated_chains_flagged(self, rng):
        from repro.mc.diagnostics import gelman_rubin

        chains = rng.standard_normal((2, 200, 1))
        chains[1] += 10.0  # stuck in a different arm of the region
        assert gelman_rubin(chains)[0] > 2.0

    def test_frozen_identical_chains(self):
        from repro.mc.diagnostics import gelman_rubin

        chains = np.ones((3, 10, 2))
        assert np.all(gelman_rubin(chains) == 1.0)

    def test_frozen_distinct_chains_infinite(self):
        from repro.mc.diagnostics import gelman_rubin

        chains = np.ones((2, 10, 1))
        chains[1] *= 2.0
        assert np.isinf(gelman_rubin(chains)[0])

    def test_accepts_chain_object_and_2d(self, rng):
        from repro.mc.diagnostics import gelman_rubin

        samples = rng.standard_normal((4, 120, 2))

        class Wrapper:
            pass

        w = Wrapper()
        w.samples = samples
        assert np.array_equal(gelman_rubin(w), gelman_rubin(samples))
        single = gelman_rubin(samples[0])  # (K, M) promoted to C = 1
        assert single.shape == (2,)

    def test_too_few_samples_raises(self, rng):
        from repro.mc.diagnostics import gelman_rubin

        with pytest.raises(ValueError, match="at least 4"):
            gelman_rubin(rng.standard_normal((2, 3, 1)))


class TestPooledEss:
    def test_iid_chains_near_total(self, rng):
        from repro.mc.diagnostics import pooled_effective_sample_size

        chains = rng.standard_normal((4, 300, 2))
        ess = pooled_effective_sample_size(chains)
        assert np.all(ess > 0.5 * 1200)
        assert np.all(ess <= 1200)

    def test_autocorrelated_chain_deflated(self, rng):
        from repro.mc.diagnostics import pooled_effective_sample_size

        walk = np.cumsum(rng.standard_normal((2, 500, 1)), axis=1)
        ess = pooled_effective_sample_size(walk)
        assert ess[0] < 0.1 * 1000  # random walk: almost no independent info

    def test_disagreeing_chains_deflated(self, rng):
        from repro.mc.diagnostics import pooled_effective_sample_size

        chains = 0.1 * rng.standard_normal((2, 200, 1))
        chains[1] += 5.0
        ess = pooled_effective_sample_size(chains)
        assert ess[0] < 0.25 * 400


class TestDiagnoseChains:
    def test_summary_verdicts(self, rng):
        from repro.mc.diagnostics import diagnose_chains

        mixed = diagnose_chains(rng.standard_normal((4, 400, 2)))
        assert mixed.mixed
        assert "mixed" in mixed.summary()

        stuck_samples = rng.standard_normal((2, 200, 1))
        stuck_samples[1] += 10.0
        stuck = diagnose_chains(stuck_samples)
        assert not stuck.mixed
        assert "NOT MIXED" in stuck.summary()

    def test_fields(self, rng):
        from repro.mc.diagnostics import diagnose_chains

        d = diagnose_chains(rng.standard_normal((3, 100, 4)))
        assert d.n_chains == 3
        assert d.n_samples_per_chain == 100
        assert d.rhat.shape == (4,)
        assert d.effective_sample_size.shape == (4,)
        assert d.max_rhat == np.max(d.rhat)
        assert d.min_ess == np.min(d.effective_sample_size)
