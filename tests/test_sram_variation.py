"""Tests for the mismatch mapping (repro.sram.variation)."""

import numpy as np
import pytest

from repro.sram.variation import VthMismatch


class TestVthMismatch:
    def test_full_cell_dimension(self, cell):
        vm = VthMismatch(cell)
        assert vm.dimension == 6

    def test_subset(self, cell):
        vm = VthMismatch(cell, devices=("pd_l", "ax_l"))
        assert vm.dimension == 2
        assert vm.paper_labels() == ("dVth1", "dVth3")

    def test_unknown_device_raises(self, cell):
        with pytest.raises(KeyError, match="unknown device"):
            VthMismatch(cell, devices=("pd_l", "bogus"))

    def test_duplicate_device_raises(self, cell):
        with pytest.raises(ValueError, match="unique"):
            VthMismatch(cell, devices=("pd_l", "pd_l"))

    def test_deltas_scaled_by_sigma(self, cell):
        vm = VthMismatch(cell, devices=("pd_l", "pu_l"))
        x = np.array([[1.0, -2.0]])
        deltas = vm.deltas(x)
        assert deltas["pd_l"][0] == pytest.approx(cell.sigma_vth["pd_l"])
        assert deltas["pu_l"][0] == pytest.approx(-2 * cell.sigma_vth["pu_l"])

    def test_deltas_shape(self, cell, rng):
        vm = VthMismatch(cell)
        x = rng.standard_normal((7, 6))
        deltas = vm.deltas(x)
        assert set(deltas) == set(vm.devices)
        assert all(v.shape == (7,) for v in deltas.values())

    def test_wrong_dimension_raises(self, cell):
        vm = VthMismatch(cell, devices=("pd_l",))
        with pytest.raises(ValueError):
            vm.deltas(np.zeros((2, 3)))

    def test_paper_labels_full(self, cell):
        vm = VthMismatch(cell)
        assert vm.paper_labels() == tuple(f"dVth{i}" for i in range(1, 7))

    def test_repr_has_sigmas(self, cell):
        assert "mV" in repr(VthMismatch(cell))
