"""Tests for subset simulation (repro.baselines.subset)."""

import math

import numpy as np
import pytest

from repro.baselines.subset import subset_simulation
from repro.mc.counter import CountedMetric
from repro.mc.indicator import FailureSpec
from repro.synthetic import AnnularArcMetric, LinearMetric, QuadrantMetric

SPEC = FailureSpec(0.0, fail_below=True)


class TestSubsetSimulation:
    def test_halfspace_4sigma(self):
        metric = LinearMetric(np.array([1.0, 0.0]), 4.0)
        result = subset_simulation(
            metric, SPEC, n_per_level=1500, rng=np.random.default_rng(3)
        )
        assert result.failure_probability == pytest.approx(
            metric.exact_failure_probability, rel=0.4
        )
        assert result.extras["converged"]

    def test_handles_bent_arc_region(self):
        """No proposal distribution at all, so the Section V-B geometry is
        harmless — the population simply flows into both arms."""
        metric = AnnularArcMetric(radius=4.5, center_angle=0.6, half_width=0.9)
        result = subset_simulation(
            metric, SPEC, n_per_level=1500, rng=np.random.default_rng(3)
        )
        assert result.failure_probability == pytest.approx(
            metric.exact_failure_probability, rel=0.4
        )

    def test_quadrant(self):
        metric = QuadrantMetric(np.array([2.5, 2.5]))
        result = subset_simulation(
            metric, SPEC, n_per_level=1500, rng=np.random.default_rng(6)
        )
        assert result.failure_probability == pytest.approx(
            metric.exact_failure_probability, rel=0.5
        )

    def test_cost_logarithmic_in_rarity(self):
        """A 5-sigma event needs only ~1-2 more levels than a 3-sigma one."""
        shallow = subset_simulation(
            LinearMetric(np.array([1.0]), 3.0), SPEC,
            n_per_level=800, rng=np.random.default_rng(0),
        )
        deep = subset_simulation(
            LinearMetric(np.array([1.0]), 5.0), SPEC,
            n_per_level=800, rng=np.random.default_rng(0),
        )
        assert deep.extras["converged"]
        assert len(deep.extras["levels"]) <= len(shallow.extras["levels"]) + 3
        assert deep.n_second_stage < 4 * shallow.n_second_stage

    def test_levels_decrease_toward_zero(self):
        metric = LinearMetric(np.array([1.0]), 4.0)
        result = subset_simulation(
            metric, SPEC, n_per_level=800, rng=np.random.default_rng(1)
        )
        levels = result.extras["levels"]
        assert levels[-1] == 0.0
        assert all(a > b for a, b in zip(levels, levels[1:]))

    def test_unreachable_event_reports_zero(self):
        metric = LinearMetric(np.array([1.0]), 40.0)
        result = subset_simulation(
            metric, SPEC, n_per_level=100, max_levels=3,
            rng=np.random.default_rng(2),
        )
        assert result.failure_probability == 0.0
        assert math.isinf(result.relative_error)
        assert not result.extras["converged"]

    def test_simulation_accounting(self):
        metric = CountedMetric(LinearMetric(np.array([1.0]), 3.0), 1)
        result = subset_simulation(
            metric, SPEC, n_per_level=400, rng=np.random.default_rng(5)
        )
        assert result.n_second_stage == metric.count

    def test_parameter_validation(self):
        metric = LinearMetric(np.array([1.0]), 3.0)
        with pytest.raises(ValueError, match="level_fraction"):
            subset_simulation(metric, SPEC, level_fraction=0.9)
        with pytest.raises(ValueError, match="n_per_level"):
            subset_simulation(metric, SPEC, n_per_level=5)

    def test_method_label(self):
        metric = LinearMetric(np.array([1.0]), 2.5)
        result = subset_simulation(
            metric, SPEC, n_per_level=200, rng=np.random.default_rng(6)
        )
        assert result.method == "Subset"
