"""Tests for the failure-interval binary search (repro.gibbs.bounds)."""

import numpy as np
import pytest

from repro.gibbs.bounds import failure_interval


def interval_indicator(lo, hi):
    """Failure region = [lo, hi] on the line."""

    def fails(v):
        v = np.atleast_1d(v)
        return (v >= lo) & (v <= hi)

    return fails


class TestFailureInterval:
    def test_brackets_known_interval(self):
        fails = interval_indicator(1.0, 3.0)
        result = failure_interval(fails, current=2.0, lo=-8.0, hi=8.0,
                                  bisect_iters=12)
        assert result.lower == pytest.approx(1.0, abs=0.01)
        assert result.upper == pytest.approx(3.0, abs=0.01)

    def test_returned_interval_verified_failing(self):
        """The bounds must lie INSIDE the true region (conservative)."""
        fails = interval_indicator(1.0, 3.0)
        result = failure_interval(fails, 2.0, -8.0, 8.0, bisect_iters=4)
        assert fails(np.array([result.lower]))[0]
        assert fails(np.array([result.upper]))[0]
        assert result.lower <= 2.0 <= result.upper

    def test_endpoint_failing_skips_search(self):
        """Region unbounded to the right: the clamp endpoint is the bound
        and costs no bisection there."""
        fails = interval_indicator(1.0, 100.0)
        result = failure_interval(fails, 2.0, -8.0, 8.0, bisect_iters=5)
        assert result.upper == 8.0
        # 2 endpoint sims + 5 left-side bisections only.
        assert result.n_simulations == 2 + 5

    def test_both_endpoints_failing_costs_two_sims(self):
        fails = interval_indicator(-100.0, 100.0)
        result = failure_interval(fails, 0.0, -8.0, 8.0)
        assert (result.lower, result.upper) == (-8.0, 8.0)
        assert result.n_simulations == 2

    def test_simulation_count_paired_search(self):
        """Interior region: 2 endpoint sims + 2 per bisection step."""
        fails = interval_indicator(-1.0, 1.0)
        result = failure_interval(fails, 0.0, -8.0, 8.0, bisect_iters=6)
        assert result.n_simulations == 2 + 2 * 6

    def test_resolution_improves_with_depth(self):
        fails = interval_indicator(0.7, 1.9)
        coarse = failure_interval(fails, 1.0, -8.0, 8.0, bisect_iters=3)
        fine = failure_interval(fails, 1.0, -8.0, 8.0, bisect_iters=14)
        err_coarse = abs(coarse.lower - 0.7) + abs(coarse.upper - 1.9)
        err_fine = abs(fine.lower - 0.7) + abs(fine.upper - 1.9)
        assert err_fine < err_coarse
        assert err_fine < 1e-3

    def test_current_outside_clamps_raises(self):
        fails = interval_indicator(0.0, 1.0)
        with pytest.raises(ValueError, match="outside clamp"):
            failure_interval(fails, 9.0, -8.0, 8.0)

    def test_narrow_slice_collapses_to_current(self):
        """A slice narrower than the bisection resolution yields a
        zero-width interval anchored at the current value — the degenerate
        case the conditional sampler guards (and the mechanism that froze
        the naive spherical chain, cf. gibbs/spherical.py)."""
        fails = interval_indicator(0.999, 1.001)
        result = failure_interval(fails, 1.0, -8.0, 8.0, bisect_iters=5)
        assert result.width < 0.01

    def test_width_property(self):
        fails = interval_indicator(-2.0, 2.0)
        result = failure_interval(fails, 0.0, -8.0, 8.0, bisect_iters=10)
        assert result.width == pytest.approx(4.0, abs=0.05)
