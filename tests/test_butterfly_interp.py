"""Property tests for the butterfly interpolation primitives
(repro.sram.butterfly internals)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sram.butterfly import _interp_increasing, _interp_increasing_batched


def monotone_values(draw, n):
    steps = draw(
        st.lists(st.floats(0.01, 1.0), min_size=n - 1, max_size=n - 1)
    )
    start = draw(st.floats(-5.0, 5.0))
    return start + np.concatenate([[0.0], np.cumsum(steps)])


class TestInterpIncreasing:
    def test_exact_at_knots(self):
        grid = np.linspace(0.0, 1.0, 11)
        z = grid**2  # increasing
        out = _interp_increasing(z, grid, z.copy())
        np.testing.assert_allclose(out, grid, atol=1e-12)

    def test_linear_function_exact_between_knots(self):
        grid = np.linspace(0.0, 2.0, 21)
        z = 3.0 * grid - 1.0
        queries = np.array([-0.4, 0.5, 2.3, 4.9])
        out = _interp_increasing(z, grid, queries)
        np.testing.assert_allclose(out, (queries + 1.0) / 3.0, atol=1e-12)

    def test_clamps_at_ends(self):
        grid = np.linspace(0.0, 1.0, 5)
        z = grid.copy()
        out = _interp_increasing(z, grid, np.array([-10.0, 10.0]))
        assert out[0] == grid[0]
        assert out[1] == grid[-1]

    def test_batched_columns_independent(self):
        grid = np.linspace(0.0, 1.0, 9)
        z = np.stack([grid, 2 * grid], axis=1)
        out = _interp_increasing(z, grid, np.array([0.5]))
        assert out[0, 0] == pytest.approx(0.5)
        assert out[0, 1] == pytest.approx(0.25)

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_inverse_property(self, data):
        """For any strictly increasing sampled function, interpolating a
        level inside the range must return an abscissa whose linear
        interpolation reproduces the level."""
        n = data.draw(st.integers(4, 24))
        z = monotone_values(data.draw, n)
        grid = np.linspace(0.0, 1.0, n)
        level = data.draw(st.floats(float(z[0]), float(z[-1])))
        x = float(_interp_increasing(z, grid, np.array([level]))[0])
        assert grid[0] <= x <= grid[-1]
        z_back = np.interp(x, grid, z)
        assert z_back == pytest.approx(level, abs=1e-7)


class TestInterpIncreasingBatched:
    def test_per_batch_queries(self):
        grid = np.linspace(0.0, 1.0, 11)
        z = np.stack([grid, 3 * grid], axis=1)
        c = np.array([[0.5, 0.6]])  # one query per batch member
        out = _interp_increasing_batched(z, grid, c)
        assert out[0, 0] == pytest.approx(0.5)
        assert out[0, 1] == pytest.approx(0.2)

    def test_matches_shared_query_version(self):
        rng = np.random.default_rng(0)
        grid = np.linspace(0.0, 1.0, 15)
        z = np.cumsum(rng.uniform(0.05, 0.3, (15, 4)), axis=0)
        c_shared = np.array([1.0, 2.0])
        shared = _interp_increasing(z, grid, c_shared)
        c_batched = np.broadcast_to(c_shared[:, np.newaxis], (2, 4)).copy()
        batched = _interp_increasing_batched(z, grid, c_batched)
        np.testing.assert_allclose(shared, batched, atol=1e-12)
