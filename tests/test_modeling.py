"""Tests for DOE plans and response surfaces (repro.modeling)."""

import numpy as np
import pytest

from repro.modeling.doe import axial_doe, composite_doe
from repro.modeling.surrogate import LinearSurrogate, QuadraticSurrogate


class TestAxialDoe:
    def test_shape(self):
        plan = axial_doe(4, levels=(2.0, 4.0))
        assert plan.shape == (1 + 2 * 2 * 4, 4)

    def test_centre_first(self):
        plan = axial_doe(3)
        np.testing.assert_array_equal(plan[0], np.zeros(3))

    def test_axial_points_on_axes(self):
        plan = axial_doe(3, levels=(2.0,))
        for row in plan[1:]:
            assert np.count_nonzero(row) == 1

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            axial_doe(0)

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            axial_doe(2, levels=(-1.0,))


class TestCompositeDoe:
    def test_pads_to_total(self, rng):
        plan = composite_doe(3, 40, rng)
        assert plan.shape == (40, 3)

    def test_too_small_total_raises(self, rng):
        with pytest.raises(ValueError, match="smaller than the axial plan"):
            composite_doe(6, 10, rng)

    def test_deterministic_with_seed(self):
        a = composite_doe(3, 30, 7)
        b = composite_doe(3, 30, 7)
        np.testing.assert_array_equal(a, b)


class TestLinearSurrogate:
    def test_exact_on_linear_function(self, rng):
        g = np.array([1.0, -2.0, 0.5])
        x = rng.standard_normal((30, 3))
        y = 3.0 + x @ g
        fit = LinearSurrogate.fit(x, y)
        assert fit.intercept == pytest.approx(3.0, abs=1e-9)
        np.testing.assert_allclose(fit.gradient_vector, g, atol=1e-9)

    def test_gradient_constant(self, rng):
        fit = LinearSurrogate(1.0, np.array([2.0, 3.0]))
        grads = fit.gradient(rng.standard_normal((5, 2)))
        np.testing.assert_array_equal(grads, np.tile([2.0, 3.0], (5, 1)))

    def test_underdetermined_raises(self):
        with pytest.raises(ValueError, match="at least"):
            LinearSurrogate.fit(np.zeros((2, 3)), np.zeros(2))


class TestQuadraticSurrogate:
    def test_n_parameters(self):
        assert QuadraticSurrogate.n_parameters(6) == 28
        assert QuadraticSurrogate.n_parameters(2) == 6

    def test_exact_on_quadratic_function(self, rng):
        m = 4
        h = rng.standard_normal((m, m))
        h = h + h.T
        g = rng.standard_normal(m)
        x = rng.standard_normal((60, m))
        y = 1.5 + x @ g + 0.5 * np.einsum("ni,ij,nj->n", x, h, x)
        fit = QuadraticSurrogate.fit(x, y)
        x_test = rng.standard_normal((10, m))
        y_test = 1.5 + x_test @ g + 0.5 * np.einsum("ni,ij,nj->n", x_test, h, x_test)
        np.testing.assert_allclose(fit.predict(x_test), y_test, atol=1e-8)
        np.testing.assert_allclose(fit.hessian, h, atol=1e-8)

    def test_gradient_matches_finite_difference(self, rng):
        m = 3
        x = rng.standard_normal((30, m))
        y = x[:, 0] ** 2 - x[:, 1] * x[:, 2] + x[:, 0]
        fit = QuadraticSurrogate.fit(x, y)
        point = rng.standard_normal((1, m))
        analytic = fit.gradient(point)[0]
        h = 1e-6
        numeric = np.array(
            [
                (fit.predict(point + h * np.eye(m)[i]) - fit.predict(point - h * np.eye(m)[i]))[0]
                / (2 * h)
                for i in range(m)
            ]
        )
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_underdetermined_raises(self):
        with pytest.raises(ValueError, match="at least"):
            QuadraticSurrogate.fit(np.zeros((5, 4)), np.zeros(5))

    def test_hessian_symmetrised(self):
        fit = QuadraticSurrogate(0.0, np.zeros(2), np.array([[1.0, 2.0], [0.0, 1.0]]))
        np.testing.assert_array_equal(fit.hessian, fit.hessian.T)
