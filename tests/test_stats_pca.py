"""Tests for PCA whitening (repro.stats.pca)."""

import numpy as np
import pytest

from repro.stats.pca import PCAWhitener


@pytest.fixture
def correlated(rng):
    mean = np.array([1.0, -2.0, 0.5])
    a = rng.standard_normal((3, 3))
    cov = a @ a.T + 0.5 * np.eye(3)
    return mean, cov


class TestConstruction:
    def test_bad_shapes_raise(self):
        with pytest.raises(ValueError):
            PCAWhitener(np.zeros(2), np.eye(3))

    def test_singular_cov_raises(self):
        cov = np.array([[1.0, 1.0], [1.0, 1.0]])
        with pytest.raises(ValueError, match="positive definite"):
            PCAWhitener(np.zeros(2), cov)

    def test_eigenvalues_descending(self, correlated):
        mean, cov = correlated
        w = PCAWhitener(mean, cov)
        assert np.all(np.diff(w.eigenvalues) <= 0)


class TestRoundTrip:
    def test_physical_white_physical(self, rng, correlated):
        mean, cov = correlated
        w = PCAWhitener(mean, cov)
        x = rng.standard_normal((40, 3)) @ np.linalg.cholesky(cov).T + mean
        np.testing.assert_allclose(w.to_physical(w.to_white(x)), x, rtol=1e-10)

    def test_white_physical_white(self, rng, correlated):
        mean, cov = correlated
        w = PCAWhitener(mean, cov)
        z = rng.standard_normal((40, 3))
        np.testing.assert_allclose(w.to_white(w.to_physical(z)), z, rtol=1e-10)


class TestWhitening:
    def test_whitened_samples_are_standard_normal(self, rng, correlated):
        mean, cov = correlated
        w = PCAWhitener(mean, cov)
        x = rng.standard_normal((100_000, 3)) @ np.linalg.cholesky(cov).T + mean
        z = w.to_white(x)
        np.testing.assert_allclose(z.mean(axis=0), 0.0, atol=0.02)
        np.testing.assert_allclose(np.cov(z, rowvar=False), np.eye(3), atol=0.03)

    def test_fit_from_samples(self, rng, correlated):
        mean, cov = correlated
        x = rng.standard_normal((100_000, 3)) @ np.linalg.cholesky(cov).T + mean
        w = PCAWhitener.fit(x)
        np.testing.assert_allclose(w.mean, mean, atol=0.03)
        z = w.to_white(x)
        np.testing.assert_allclose(np.cov(z, rowvar=False), np.eye(3), atol=0.03)

    def test_whiten_metric_wraps_coordinates(self, correlated):
        mean, cov = correlated
        w = PCAWhitener(mean, cov)

        def physical_metric(x):
            return x[:, 0]

        wrapped = w.whiten_metric(physical_metric)
        z = np.zeros((1, 3))
        assert wrapped(z)[0] == pytest.approx(mean[0])
