"""Tests for the lockstep multi-chain Gibbs engine.

Three contracts are pinned here:

1. the batched interval search is *exactly* the scalar search run per
   chain — same intervals, same per-chain simulation counts (property
   test over random regions and depths);
2. with one chain the lockstep samplers are bit-for-bit identical to the
   sequential ``run`` under the same seed — multi-chain mode is a pure
   execution-strategy change, not a statistical one;
3. the ``CountedMetric`` accounting of a C-chain lockstep run equals the
   sum of C scalar-chain runs while issuing far fewer metric *calls*.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gibbs.bounds import batched_failure_interval, failure_interval
from repro.gibbs.cartesian import CartesianGibbs, MultiChainGibbs
from repro.gibbs.coordinates import initial_spherical_coordinates
from repro.gibbs.spherical import SphericalGibbs
from repro.gibbs.two_stage import gibbs_importance_sampling
from repro.mc.counter import CountedMetric
from repro.mc.indicator import FailureSpec
from repro.synthetic import LinearMetric, QuadrantMetric

SPEC = FailureSpec(0.0, fail_below=True)
ZETA = 8.0


# --------------------------------------------------------------------------
# 1. Batched search == C independent scalar searches (property test)
# --------------------------------------------------------------------------

@st.composite
def interval_problems(draw):
    """Per-chain failure intervals inside [-8, 8] plus a failing current."""
    n_chains = draw(st.integers(1, 6))
    regions, currents = [], []
    for _ in range(n_chains):
        if draw(st.booleans()):  # region touching the left clamp
            a = -ZETA
        else:
            a = draw(st.floats(-7.5, 7.0))
        if draw(st.booleans()):  # region touching the right clamp
            b = ZETA
        else:
            b = min(a + draw(st.floats(0.1, 4.0)), 7.9)
        t = draw(st.floats(0.0, 1.0))
        regions.append((a, b))
        currents.append(a + t * (b - a))
    return regions, currents


class TestBatchedSearchParity:
    @given(interval_problems(), st.integers(1, 8), st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_matches_scalar_search_per_chain(
        self, problem, bisect_iters, ladder_width
    ):
        regions, currents = problem

        def scalar_fails(c):
            a, b = regions[c]
            return lambda v: (np.atleast_1d(v) >= a) & (np.atleast_1d(v) <= b)

        def batched_fails(chain_idx, values):
            lo_arr = np.array([regions[c][0] for c in chain_idx])
            hi_arr = np.array([regions[c][1] for c in chain_idx])
            return (values >= lo_arr) & (values <= hi_arr)

        batched = batched_failure_interval(
            batched_fails, np.array(currents), -ZETA, ZETA,
            bisect_iters=bisect_iters, ladder_width=ladder_width,
        )
        for c, current in enumerate(currents):
            scalar = failure_interval(
                scalar_fails(c), current, -ZETA, ZETA,
                bisect_iters=bisect_iters, ladder_width=ladder_width,
            )
            # Bitwise equality: the bisection arithmetic is identical.
            assert batched.lower[c] == scalar.lower
            assert batched.upper[c] == scalar.upper
            assert batched.per_chain_simulations[c] == scalar.n_simulations
        assert batched.n_simulations == int(batched.per_chain_simulations.sum())

    def test_rejects_current_outside_clamps(self):
        def fails(chain_idx, values):
            return np.ones(values.size, dtype=bool)

        with pytest.raises(ValueError, match="outside clamp"):
            batched_failure_interval(fails, np.array([0.0, 9.0]), -8.0, 8.0)

    def test_rejects_empty_batch(self):
        def fails(chain_idx, values):
            return np.ones(values.size, dtype=bool)

        with pytest.raises(ValueError, match="at least one chain"):
            batched_failure_interval(fails, np.array([]), -8.0, 8.0)


# --------------------------------------------------------------------------
# 2. Single-chain lockstep == sequential, bit for bit
# --------------------------------------------------------------------------

class TestSingleChainBitEquality:
    def test_cartesian(self):
        metric = LinearMetric(np.array([1.0, 0.0]), 3.0)
        x0 = np.array([3.5, 0.0])
        sampler = CartesianGibbs(metric, SPEC)
        seq = sampler.run(x0, 40, np.random.default_rng(7))
        lock = sampler.run_lockstep(x0, 40, np.random.default_rng(7))
        assert lock.n_chains == 1
        assert np.array_equal(seq.samples, lock.samples[0])
        assert seq.n_simulations == lock.n_simulations
        assert np.array_equal(
            np.asarray(seq.interval_widths), lock.interval_widths[0]
        )

    def test_spherical(self):
        metric = LinearMetric(np.array([1.0, 0.0]), 3.0)
        r0, a0 = initial_spherical_coordinates(np.array([3.5, 0.0]))
        sampler = SphericalGibbs(metric, SPEC)
        seq = sampler.run(r0, a0, 40, np.random.default_rng(11))
        lock = sampler.run_lockstep(r0, a0, 40, np.random.default_rng(11))
        assert np.array_equal(seq.samples, lock.samples[0])
        assert seq.n_simulations == lock.n_simulations

    def test_cartesian_quadrant_region(self):
        """Bit-parity must also hold when clamp endpoints fail (one-sided
        searches) — the quadrant region exercises that branch."""
        metric = QuadrantMetric(np.zeros(2))
        x0 = np.array([1.0, 1.0])
        sampler = CartesianGibbs(metric, SPEC)
        seq = sampler.run(x0, 30, np.random.default_rng(5))
        lock = sampler.run_lockstep(x0, 30, np.random.default_rng(5))
        assert np.array_equal(seq.samples, lock.samples[0])
        assert seq.n_simulations == lock.n_simulations


# --------------------------------------------------------------------------
# 3. Simulation-count parity and call batching for C > 1
# --------------------------------------------------------------------------

class TestMultiChainAccounting:
    def test_count_parity_with_scalar_runs(self):
        """Lockstep CountedMetric count == sum of C scalar-chain runs.

        On the quadrant region every coordinate update costs a fixed,
        rng-independent number of simulations (the left endpoint always
        passes, the right always fails), so the scalar-run totals are
        comparable across different random seeds.
        """
        starts = np.array([[1.0, 1.0], [0.5, 2.0], [2.0, 0.5], [1.5, 1.5]])
        n_samples = 25

        scalar_total = 0
        scalar_calls = 0
        for c, x0 in enumerate(starts):
            counted = CountedMetric(QuadrantMetric(np.zeros(2)), 2)
            sampler = CartesianGibbs(counted, SPEC)
            chain = sampler.run(
                x0, n_samples, np.random.default_rng(100 + c)
            )
            assert counted.count == chain.n_simulations
            scalar_total += counted.count
            scalar_calls += counted.calls

        counted = CountedMetric(QuadrantMetric(np.zeros(2)), 2)
        sampler = CartesianGibbs(counted, SPEC)
        multi = sampler.run_lockstep(
            starts, n_samples, np.random.default_rng(999)
        )
        assert counted.count == multi.n_simulations == scalar_total
        assert np.all(multi.per_chain_simulations == scalar_total // 4)
        # Batching: same simulation count issued in ~4x fewer metric calls
        # (every update's endpoint/bisection queries cover all 4 chains).
        assert counted.calls * 2 < scalar_calls

    def test_counter_tracks_calls_and_reset(self):
        counted = CountedMetric(QuadrantMetric(np.zeros(2)), 2)
        counted(np.zeros((5, 2)))
        counted(np.zeros((3, 2)))
        assert counted.count == 8
        assert counted.calls == 2
        counted.reset()
        assert counted.count == 0
        assert counted.calls == 0

    def test_container_views(self):
        metric = LinearMetric(np.array([1.0, 0.0]), 3.0)
        sampler = CartesianGibbs(metric, SPEC)
        starts = np.array([[3.5, 0.0], [3.2, 0.4], [3.8, -0.3]])
        multi = sampler.run_lockstep(starts, 12, np.random.default_rng(2))
        assert isinstance(multi, MultiChainGibbs)
        assert multi.samples.shape == (3, 12, 2)
        assert multi.n_samples == 36
        assert multi.pooled_samples.shape == (36, 2)
        assert np.array_equal(multi.pooled_samples[12:24], multi.samples[1])
        one = multi.chain(1)
        assert np.array_equal(one.samples, multi.samples[1])
        assert one.n_simulations == multi.per_chain_simulations[1]
        assert multi.simulations_per_sample == pytest.approx(
            multi.n_simulations / 36
        )

    def test_lockstep_rejects_passing_start(self):
        metric = LinearMetric(np.array([1.0, 0.0]), 3.0)
        sampler = CartesianGibbs(metric, SPEC)
        starts = np.array([[3.5, 0.0], [0.0, 0.0]])  # second start passes
        with pytest.raises(ValueError, match="not in the failure region"):
            sampler.run_lockstep(starts, 5, np.random.default_rng(0))

    def test_spherical_lockstep_rejects_bad_r0_size(self):
        metric = LinearMetric(np.array([1.0, 0.0]), 3.0)
        sampler = SphericalGibbs(metric, SPEC)
        _, a0 = initial_spherical_coordinates(np.array([3.5, 0.0]))
        with pytest.raises(ValueError):
            sampler.run_lockstep(
                np.array([3.5, 3.5, 3.5]), np.tile(a0, (2, 1)), 5,
                np.random.default_rng(0),
            )


# --------------------------------------------------------------------------
# 4. Multi-chain two-stage flow
# --------------------------------------------------------------------------

class TestMultiChainTwoStage:
    def test_accuracy_and_diagnostics(self):
        metric = LinearMetric(np.array([1.0, 0.0]), 3.0)
        exact = metric.exact_failure_probability
        result = gibbs_importance_sampling(
            metric, SPEC, dimension=2,
            coordinate_system="cartesian",
            n_gibbs=150, n_chains=4, n_second_stage=4000,
            rng=np.random.default_rng(3),
        )
        assert result.failure_probability == pytest.approx(exact, rel=0.3)
        diag = result.extras["chain_diagnostics"]
        assert diag.n_chains == 4
        assert diag.n_samples_per_chain == 150
        assert np.isfinite(diag.max_rhat)
        chain = result.extras["chain"]
        assert chain.samples.shape == (4, 150, 2)

    def test_spherical_multichain_runs(self):
        metric = LinearMetric(np.array([1.0, 0.0]), 3.0)
        exact = metric.exact_failure_probability
        result = gibbs_importance_sampling(
            metric, SPEC, dimension=2,
            coordinate_system="spherical",
            n_gibbs=120, n_chains=3, n_second_stage=4000,
            rng=np.random.default_rng(17),
        )
        assert result.failure_probability == pytest.approx(exact, rel=0.3)
        assert result.extras["chain"].n_chains == 3

    def test_single_chain_has_no_chain_diagnostics(self):
        metric = LinearMetric(np.array([1.0, 0.0]), 3.0)
        result = gibbs_importance_sampling(
            metric, SPEC, dimension=2,
            coordinate_system="cartesian",
            n_gibbs=60, n_chains=1, n_second_stage=500,
            rng=np.random.default_rng(1),
        )
        assert "chain_diagnostics" not in result.extras

    def test_short_chains_skip_diagnostics(self):
        """Split R-hat needs 4 samples/chain; shorter multi-chain runs must
        still produce an estimate, just without the diagnostics."""
        metric = LinearMetric(np.array([1.0, 0.0]), 3.0)
        result = gibbs_importance_sampling(
            metric, SPEC, dimension=2,
            n_gibbs=3, n_chains=4, n_second_stage=200,
            rng=np.random.default_rng(0),
        )
        assert result.failure_probability > 0
        assert "chain_diagnostics" not in result.extras

    def test_invalid_n_chains_raises(self):
        metric = LinearMetric(np.array([1.0, 0.0]), 3.0)
        with pytest.raises(ValueError, match="n_chains"):
            gibbs_importance_sampling(
                metric, SPEC, dimension=2, n_chains=0,
                rng=np.random.default_rng(0),
            )
