"""Tests for the calibrated problem factories (repro.sram.problems)."""

import numpy as np
import pytest

from repro.sram.problems import (
    fragile_cell,
    read_current_problem,
    read_noise_margin_problem,
    write_noise_margin_problem,
)


class TestFactories:
    def test_rnm(self):
        prob = read_noise_margin_problem()
        assert prob.name == "rnm"
        assert prob.dimension == 6
        assert prob.spec.fail_below

    def test_wnm(self):
        prob = write_noise_margin_problem()
        assert prob.dimension == 6
        assert "write" in prob.description

    def test_iread_uses_fragile_cell(self):
        prob = read_current_problem()
        assert prob.dimension == 2
        # Fragile sizing: access wider than pull-down (cell ratio < 1).
        geo = prob.metric.cell.geometries
        assert geo["access"].ratio > geo["pull_down"].ratio

    def test_custom_threshold(self):
        prob = read_noise_margin_problem(threshold=0.2)
        assert prob.spec.threshold == pytest.approx(0.2)

    def test_repr(self):
        assert "rnm" in repr(read_noise_margin_problem())


class TestNominalIsPassing:
    """The nominal corner must pass every spec by construction."""

    def test_rnm_nominal_passes(self):
        prob = read_noise_margin_problem()
        assert not prob.indicator(np.zeros((1, 6)))[0]

    def test_wnm_nominal_passes(self):
        prob = write_noise_margin_problem()
        assert not prob.indicator(np.zeros((1, 6)))[0]

    def test_iread_nominal_passes(self):
        prob = read_current_problem()
        assert not prob.indicator(np.zeros((1, 2)))[0]


class TestFailureReachable:
    """Each spec must be violated somewhere within the sampling clamp."""

    def test_rnm_fails_at_corner(self):
        prob = read_noise_margin_problem()
        x = np.zeros((1, 6))
        x[0, 0], x[0, 2] = 8.0, -8.0
        assert prob.indicator(x)[0]

    def test_wnm_fails_at_corner(self):
        prob = write_noise_margin_problem()
        x = np.zeros((1, 6))
        x[0, 2], x[0, 4] = 8.0, -8.0
        assert prob.indicator(x)[0]

    def test_iread_fails_weak_and_upset(self):
        prob = read_current_problem()
        weak = np.array([[5.0, 4.0]])
        upset = np.array([[4.0, -4.0]])
        assert prob.indicator(weak)[0]
        assert prob.indicator(upset)[0]


class TestFragileCell:
    def test_low_cell_ratio(self):
        cell = fragile_cell()
        ratio = cell.geometries["pull_down"].ratio / cell.geometries["access"].ratio
        assert ratio < 0.5

    def test_larger_mismatch(self):
        from repro.sram import SixTransistorCell

        assert (
            fragile_cell().sigma_vth["pd_l"]
            > SixTransistorCell().sigma_vth["pd_l"]
        )
