"""Tests for the array-API backend dispatch layer (repro.backend)."""

import numpy as np
import pytest

from repro.backend import (
    BACKEND_ENV,
    BackendUnavailableError,
    array_namespace,
    astype,
    available_backends,
    device_info,
    errstate,
    gather_1d,
    get_namespace,
    is_numpy_namespace,
    resolve_backend,
    take_along_axis,
    to_numpy,
)


class _FakeArray:
    """A non-ndarray array-like: exercises the non-numpy code paths."""

    def __init__(self, a):
        self._a = np.asarray(a)

    @property
    def shape(self):
        return self._a.shape

    @property
    def dtype(self):
        return self._a.dtype

    def __array__(self, dtype=None, copy=None):
        return self._a


class _MinimalNamespace:
    """A strict array-API-flavoured namespace over numpy semantics.

    Deliberately exposes only the operations the dispatch fallbacks are
    allowed to assume (no ``take_along_axis``), so the shim implementations
    get exercised even on a numpy-only machine.
    """

    __name__ = "minimal"

    permute_dims = staticmethod(np.transpose)
    reshape = staticmethod(np.reshape)
    broadcast_to = staticmethod(np.broadcast_to)
    arange = staticmethod(np.arange)
    take = staticmethod(np.take)


class TestResolution:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend() == "numpy"
        assert get_namespace() is np

    def test_alias_names(self):
        assert resolve_backend("np") == "numpy"
        assert resolve_backend("NumPy") == "numpy"

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        assert get_namespace() is np

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "definitely-not-a-backend")
        assert get_namespace("numpy") is np

    def test_unknown_backend_raises(self):
        with pytest.raises(BackendUnavailableError, match="unknown backend"):
            get_namespace("fortranpower")

    def test_missing_backend_raises(self):
        if "torch" in available_backends():
            pytest.skip("torch is installed here")
        with pytest.raises(BackendUnavailableError):
            get_namespace("torch")

    def test_namespace_object_passthrough(self):
        ns = _MinimalNamespace()
        assert get_namespace(ns) is ns

    def test_available_backends_contains_numpy(self):
        names = available_backends()
        assert names[0] == "numpy"


class TestNamespaceHelpers:
    def test_is_numpy_namespace(self):
        assert is_numpy_namespace(np)
        assert not is_numpy_namespace(_MinimalNamespace())

    def test_array_namespace_numpy_fast_path(self):
        assert array_namespace(np.ones(3), 1.0, None) is np

    def test_array_namespace_all_scalars(self):
        assert array_namespace(1.0, 2, None) is np

    def test_to_numpy_roundtrip(self):
        a = np.arange(4.0)
        assert to_numpy(a) is a
        b = to_numpy(_FakeArray(a))
        np.testing.assert_array_equal(b, a)

    def test_astype(self):
        out = astype(np, np.arange(3), np.float64)
        assert out.dtype == np.float64

    def test_errstate_numpy_suppresses(self):
        with errstate(np, divide="ignore", invalid="ignore"):
            out = np.float64(1.0) / np.zeros(2)
        assert np.all(np.isinf(out))

    def test_errstate_foreign_is_null_context(self):
        with errstate(_MinimalNamespace()):
            pass

    def test_device_info_numpy(self):
        info = device_info("numpy")
        assert info["backend"] == "numpy"
        assert info["numpy_version"] == np.__version__
        assert "blas" in info


class TestGatherShims:
    def test_take_along_axis_numpy_dispatch(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(4, 5, 6))
        idx = rng.integers(0, 5, size=(4, 3, 6))
        np.testing.assert_array_equal(
            take_along_axis(np, x, idx, axis=1),
            np.take_along_axis(x, idx, axis=1),
        )

    @pytest.mark.parametrize("axis", [0, 1, 2, -1])
    def test_take_along_axis_fallback_matches_numpy(self, axis):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(3, 4, 5))
        idx = rng.integers(0, x.shape[axis], size=(3, 4, 5))
        ns = _MinimalNamespace()
        np.testing.assert_array_equal(
            take_along_axis(ns, x, idx, axis=axis),
            np.take_along_axis(x, idx, axis=axis),
        )

    def test_take_along_axis_fallback_broadcast_leading(self):
        # Index with a size-1 leading axis against a full array.
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 6, 4))
        idx = rng.integers(0, 6, size=(5, 2, 4))
        ns = _MinimalNamespace()
        np.testing.assert_array_equal(
            take_along_axis(ns, x, idx, axis=1),
            np.take_along_axis(np.broadcast_to(x, (5, 6, 4)), idx, axis=1),
        )

    def test_gather_1d_numpy_fast_path(self):
        values = np.arange(10.0)
        idx = np.array([[1, 3], [5, 7]])
        np.testing.assert_array_equal(gather_1d(np, values, idx), values[idx])

    def test_gather_1d_fallback(self):
        values = _FakeArray(np.arange(10.0))
        idx = _FakeArray(np.array([[1, 3], [5, 7]]))
        out = gather_1d(np, values, idx)
        np.testing.assert_array_equal(out, np.arange(10.0)[np.array([[1, 3], [5, 7]])])

    def test_backend_fixture_provides_namespace(self, backend_xp):
        a = backend_xp.asarray([1.0, 2.0], dtype=backend_xp.float64)
        np.testing.assert_allclose(to_numpy(a), [1.0, 2.0])
