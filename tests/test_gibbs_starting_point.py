"""Tests for Algorithm 4 (repro.gibbs.starting_point)."""

import numpy as np
import pytest

from repro.gibbs.starting_point import find_starting_point
from repro.mc.counter import CountedMetric
from repro.mc.indicator import FailureSpec
from repro.synthetic import AnnularArcMetric, LinearMetric, QuadrantMetric

SPEC = FailureSpec(0.0, fail_below=True)


class TestFindStartingPoint:
    def test_halfspace_minimum_norm(self, rng):
        """On {a.x >= b} the true minimum-norm failure point is at distance
        b/||a|| along a; Algorithm 4 must land near it."""
        metric = LinearMetric(np.array([1.0, 1.0]), 4.0)
        sp = find_starting_point(metric, SPEC, rng=rng, order="linear")
        assert SPEC.indicator(metric(sp.x[np.newaxis, :]))[0]
        # true minimum norm = 4 / sqrt(2) ~ 2.83; verification walk may
        # overshoot by the 1.1-1.25 scale steps.
        assert sp.norm == pytest.approx(4.0 / np.sqrt(2), rel=0.35)

    def test_point_verified_failing(self, rng):
        metric = QuadrantMetric(np.array([2.0, 2.0]))
        sp = find_starting_point(metric, SPEC, rng=rng)
        assert SPEC.indicator(metric(sp.x[np.newaxis, :]))[0]

    def test_quadratic_surrogate_on_curved_region(self, rng):
        metric = AnnularArcMetric(radius=3.5, center_angle=0.5, half_width=1.0)
        sp = find_starting_point(metric, SPEC, rng=rng)
        assert SPEC.indicator(metric(sp.x[np.newaxis, :]))[0]
        assert sp.norm < 7.0

    def test_simulation_accounting(self, rng):
        metric = CountedMetric(LinearMetric(np.array([1.0, 0.0]), 3.0), 2)
        sp = find_starting_point(metric, SPEC, rng=rng, doe_budget=60)
        assert sp.n_simulations == metric.count
        assert sp.n_simulations >= 60  # DOE + at least one verification

    def test_spherical_coordinates_consistent(self, rng):
        metric = LinearMetric(np.array([0.0, 1.0]), 3.5)
        sp = find_starting_point(metric, SPEC, rng=rng)
        assert sp.r == pytest.approx(np.linalg.norm(sp.x))
        direction = sp.alpha / np.linalg.norm(sp.alpha)
        np.testing.assert_allclose(direction, sp.x / sp.r, rtol=1e-9)

    def test_doe_budget_too_small_raises(self, rng):
        metric = LinearMetric(np.ones(4), 3.0)
        with pytest.raises(ValueError):
            find_starting_point(metric, SPEC, rng=rng, doe_budget=5)

    def test_unreachable_region_raises(self, rng):
        metric = LinearMetric(np.array([1.0, 0.0]), 50.0)  # 50 sigma away
        with pytest.raises(RuntimeError, match="failed to locate"):
            find_starting_point(metric, SPEC, rng=rng)

    def test_invalid_order_raises(self, rng):
        metric = LinearMetric(np.ones(2), 3.0)
        with pytest.raises(ValueError, match="order"):
            find_starting_point(metric, SPEC, rng=rng, order="cubic")

    def test_linear_order_cheaper_budget(self, rng):
        metric = CountedMetric(LinearMetric(np.ones(6), 8.0), 6)
        sp = find_starting_point(metric, SPEC, rng=rng, order="linear")
        # Linear default budget (~50) far below the quadratic one (~2*28).
        assert sp.n_simulations < 80

    def test_deterministic_with_seed(self):
        metric = LinearMetric(np.array([1.0, -0.5]), 3.0)
        a = find_starting_point(metric, SPEC, rng=np.random.default_rng(2))
        b = find_starting_point(metric, SPEC, rng=np.random.default_rng(2))
        np.testing.assert_array_equal(a.x, b.x)

    def test_epsilon_controls_alpha_length(self, rng):
        metric = LinearMetric(np.array([1.0, 0.0]), 3.0)
        sp = find_starting_point(metric, SPEC, rng=rng, epsilon=1e-3)
        assert np.linalg.norm(sp.alpha) == pytest.approx(1e-3)
