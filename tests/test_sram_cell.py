"""Tests for the 6-T cell and its batched analyses (repro.sram.cell)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import solve_dc
from repro.devices.technology import DeviceGeometry
from repro.sram.cell import (
    DEVICE_NAMES,
    PAPER_INDEX,
    SixTransistorCell,
    _solve_monotone_node,
)


def _solve_monotone_node_reference(residual, lo, hi, shape,
                                   iterations=26, tol=2e-12):
    """The pre-active-set full-array loop, verbatim (flattened inputs).

    Kept here as the ground truth the active-set/early-exit rewrite must
    match bit for bit: frozen lanes were already inert in this loop (the
    bracket updates mask on ``~done`` and ``v`` keeps its frozen value), so
    compacting them away must not change a single ULP.
    """
    n = int(np.prod(shape)) if shape else 1
    lo_arr = np.full(n, float(lo))
    hi_arr = np.full(n, float(hi))
    v = 0.5 * (lo_arr + hi_arr)
    for _ in range(iterations):
        f, dfdv = residual(v)
        done = np.abs(f) < tol
        if done.all():
            break
        above = f > 0.0
        hi_arr = np.where(above & ~done, v, hi_arr)
        lo_arr = np.where(~above & ~done, v, lo_arr)
        with np.errstate(divide="ignore", invalid="ignore"):
            step = np.where(dfdv > 0.0, -f / dfdv, 0.0)
        candidate = v + step
        inside = (candidate > lo_arr) & (candidate < hi_arr) & (dfdv > 0.0)
        v_next = np.where(inside, candidate, 0.5 * (lo_arr + hi_arr))
        v = np.where(done, v, v_next)
    return v.reshape(shape)


class TestActiveSetSolverBitIdentity:
    """The active-set rewrite must reproduce the old loop exactly."""

    def _compare_on_cell(self, cell, delta):
        grid = np.linspace(0.0, 1.2, 9)
        batch = np.broadcast_shapes(*(np.shape(d) for d in delta.values()))
        shape = (grid.size,) + batch
        vin = grid.reshape((-1,) + (1,) * len(batch))
        residual = cell._half_cell_residual("left", vin, 1.2, 1.2, delta, shape)
        new = _solve_monotone_node(residual, -0.2, 1.4, shape)
        old = _solve_monotone_node_reference(
            lambda v: residual(v, None), -0.2, 1.4, shape
        )
        np.testing.assert_array_equal(new, old)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=12, deadline=None)
    def test_property_battery_random_mismatch(self, seed):
        cell = SixTransistorCell()
        gen = np.random.default_rng(seed)
        delta = {
            name: gen.normal(0.0, 0.08, size=6) for name in DEVICE_NAMES
        }
        self._compare_on_cell(cell, delta)

    def test_collapsed_lobe_cells(self, cell):
        """Extreme mismatch (destroyed lobes, slow-converging lanes) mixed
        with benign lanes — the regime the early exit targets."""
        delta = {
            "pd_l": np.array([0.0, 0.5, -0.3, 0.02]),
            "ax_l": np.array([0.0, -0.4, 0.35, -0.01]),
            "pu_l": np.array([0.0, 0.3, -0.45, 0.0]),
        }
        self._compare_on_cell(cell, delta)

    def test_synthetic_monotone_residual(self):
        """Analytic cubic residual: exercises Newton steps, bisection
        fallbacks and per-lane convergence spread without any devices."""
        gen = np.random.default_rng(0)
        roots = gen.uniform(-0.1, 1.3, 64)
        scale = gen.uniform(1e-3, 10.0, 64)

        def residual_new(v, idx=None):
            r = roots if idx is None else roots[idx]
            s = scale if idx is None else scale[idx]
            d = v - r
            return s * d**3 + 0.5 * d, s * 3 * d**2 + 0.5

        new = _solve_monotone_node(residual_new, -0.2, 1.4, (64,))
        old = _solve_monotone_node_reference(
            lambda v: residual_new(v, None), -0.2, 1.4, (64,)
        )
        np.testing.assert_array_equal(new, old)
        np.testing.assert_allclose(new, roots, atol=1e-6)

    def test_warm_start_agrees_within_tolerance(self):
        """A warm start changes the Newton path, never the answer beyond
        the solver tolerance — and a *bad* warm start stays safe because
        the bracket remains the full interval."""
        gen = np.random.default_rng(1)
        roots = gen.uniform(0.0, 1.2, 32)

        def residual(v, idx=None):
            r = roots if idx is None else roots[idx]
            return v - r, np.ones_like(v)

        cold = _solve_monotone_node(residual, -0.2, 1.4, (32,))
        warm = _solve_monotone_node(residual, -0.2, 1.4, (32,), v0=roots + 0.01)
        bad = _solve_monotone_node(
            residual, -0.2, 1.4, (32,), v0=np.full(32, 99.0)
        )
        np.testing.assert_allclose(warm, cold, atol=1e-9)
        np.testing.assert_allclose(bad, cold, atol=1e-9)


class TestConstruction:
    def test_device_names_paper_order(self):
        assert DEVICE_NAMES == ("pd_l", "pd_r", "ax_l", "ax_r", "pu_l", "pu_r")
        assert PAPER_INDEX["M1"] == 0 and PAPER_INDEX["M3"] == 2 and PAPER_INDEX["M5"] == 4

    def test_sigma_per_device(self, cell):
        assert cell.sigma_vth["pu_l"] > cell.sigma_vth["ax_l"] > cell.sigma_vth["pd_l"]

    def test_geometry_override(self):
        c = SixTransistorCell(geometries={"access": DeviceGeometry(0.4, 0.1)})
        assert c.geometries["access"].width == pytest.approx(0.4)

    def test_unknown_geometry_role_raises(self):
        with pytest.raises(KeyError, match="unknown geometry roles"):
            SixTransistorCell(geometries={"nonsense": DeviceGeometry(0.1, 0.1)})

    def test_repr(self, cell):
        assert "SixTransistorCell" in repr(cell)


class TestHalfCellVtc:
    def test_monotone_decreasing(self, cell):
        grid = np.linspace(0, 1.2, 41)
        vtc = cell.half_cell_vtc("left", grid, bl_voltage=1.2)
        assert vtc.shape == (41,)
        assert np.all(np.diff(vtc) < 1e-9)

    def test_read_low_level_raised_by_access(self, cell):
        """During read the access transistor pulls the low node up — the
        classic read-disturb mechanism."""
        grid = np.array([1.2])
        v_read = cell.half_cell_vtc("left", grid, bl_voltage=1.2)[0]
        v_hold = cell.half_cell_vtc("left", grid, bl_voltage=1.2, wl_voltage=0.0)[0]
        assert v_read > v_hold + 0.05
        assert v_hold < 0.02

    def test_write_config_collapses_high_level(self, cell):
        grid = np.array([0.0])
        v_read = cell.half_cell_vtc("left", grid, bl_voltage=1.2)[0]
        v_write = cell.half_cell_vtc("left", grid, bl_voltage=0.0)[0]
        assert v_read > 1.1      # read config: output high ~ vdd
        assert v_write < 0.3     # write config: bitline wins

    def test_batched_mismatch(self, cell):
        grid = np.linspace(0, 1.2, 21)
        dv = {"pd_l": np.array([-0.05, 0.0, 0.05])}
        vtc = cell.half_cell_vtc("left", grid, 1.2, dv)
        assert vtc.shape == (21, 3)
        # Weaker pull-down (higher vth) -> higher low level at full input.
        assert vtc[-1, 2] > vtc[-1, 0]

    def test_sides_symmetric_nominal(self, cell):
        grid = np.linspace(0, 1.2, 21)
        left = cell.half_cell_vtc("left", grid, 1.2)
        right = cell.half_cell_vtc("right", grid, 1.2)
        np.testing.assert_allclose(left, right, atol=1e-9)

    def test_invalid_side_raises(self, cell):
        with pytest.raises(ValueError, match="side"):
            cell.half_cell_vtc("top", np.linspace(0, 1, 5), 1.2)

    def test_2d_grid_raises(self, cell):
        with pytest.raises(ValueError, match="1-D"):
            cell.half_cell_vtc("left", np.zeros((2, 2)), 1.2)

    def test_kcl_residual_zero_at_solution(self, cell):
        grid = np.linspace(0, 1.2, 11)
        vtc = cell.half_cell_vtc("left", grid, 1.2)
        residual = cell._half_cell_residual(
            "left", grid, 1.2, 1.2, {}, grid.shape
        )
        f, _ = residual(vtc)
        assert np.max(np.abs(f)) < 1e-10

    def test_residual_subset_matches_full(self, cell):
        """Active-set contract: evaluating a lane subset must be identical
        to evaluating all lanes and slicing."""
        grid = np.linspace(0, 1.2, 11)
        residual = cell._half_cell_residual(
            "left", grid, 1.2, 1.2, {}, grid.shape
        )
        v = np.linspace(0.1, 1.1, 11)
        idx = np.array([0, 3, 7, 10])
        f_all, df_all = residual(v)
        f_sub, df_sub = residual(v[idx], idx)
        np.testing.assert_array_equal(f_sub, f_all[idx])
        np.testing.assert_array_equal(df_sub, df_all[idx])


class TestBatchIndependence:
    """Regression: results must not depend on batch composition.

    An early version of the monotone node solver could hurl an
    already-converged lane to the midpoint of a stale bracket when slower
    batch-mates kept the iteration alive — every batched analysis silently
    depended on its companions (caught via importance-sampling weight
    explosions on the write-margin metric).
    """

    def test_vtc_alone_equals_in_mixed_batch(self, cell, rng):
        grid = np.linspace(0, 1.2, 41)
        # A benign sample paired with an extreme one that converges slowly.
        benign = {name: 0.02 for name in DEVICE_NAMES}
        mixed = {
            name: np.array([0.02, 0.35 if name == "pd_l" else -0.25])
            for name in DEVICE_NAMES
        }
        alone = cell.half_cell_vtc(
            "left", grid, 0.0, {k: np.array([v]) for k, v in benign.items()}
        )
        paired = cell.half_cell_vtc("left", grid, 0.0, mixed)
        np.testing.assert_allclose(paired[:, 0], alone[:, 0], atol=1e-9)

    def test_metric_chunk_vs_single(self, wnm_metric, rng):
        x = rng.uniform(-5, 5, (64, 6))
        chunked = wnm_metric(x)
        singles = np.concatenate([wnm_metric(x[i : i + 1]) for i in range(64)])
        np.testing.assert_allclose(chunked, singles, atol=1e-9)


class TestReadState:
    def test_nominal_holds_stored_zero(self, cell):
        vq, vqb = cell.solve_read_state()
        assert float(vq) < 0.45
        assert float(vqb) > 1.1

    def test_stored_one_mirrors(self, cell):
        vq, vqb = cell.solve_read_state(stored_zero_at_q=False)
        assert float(vq) > 1.1
        assert float(vqb) < 0.45

    def test_batched(self, cell):
        dv = {"pd_l": np.linspace(-0.05, 0.05, 5)}
        vq, vqb = cell.solve_read_state(dv)
        assert vq.shape == (5,)
        # Weaker pull-down lets the access raise the low node further.
        assert np.all(np.diff(vq) > 0)

    def test_extreme_mismatch_flips_cell(self, skewed_cell):
        """Large (weak pull-down, strong access) mismatch must upset the
        read: the solver lands on the flipped state."""
        dv = {"pd_l": np.array([0.0, 0.5]), "ax_l": np.array([0.0, -0.4])}
        vq, _ = skewed_cell.solve_read_state(dv)
        assert vq[0] < 0.5          # nominal holds
        assert vq[1] > 0.8          # upset: q node flipped high

    def test_matches_general_netlist_solver(self, cell):
        """Cross-validation: the specialised read solver must agree with the
        general MNA solver on the full-cell netlist."""
        circuit = cell.build_circuit()
        dv = {"pd_l": 0.03, "ax_l": -0.02}
        sol = solve_dc(
            circuit,
            {"vdd": 1.2, "wl": 1.2, "bl": 1.2, "blb": 1.2},
            element_params={k: {"delta_vth": v} for k, v in dv.items()},
            initial={"q": 0.05, "qb": 1.2},
        )
        vq, vqb = cell.solve_read_state(dv)
        assert float(sol.voltage("q")) == pytest.approx(float(vq), abs=1e-6)
        assert float(sol.voltage("qb")) == pytest.approx(float(vqb), abs=1e-6)


class TestReadCurrent:
    def test_nominal_positive(self, cell):
        i = cell.read_current()
        assert float(i) > 1e-5

    def test_weaker_access_less_current(self, cell):
        dv = {"ax_l": np.array([0.0, 0.1])}
        i = cell.read_current(dv)
        assert i[1] < i[0]

    def test_flip_collapses_current(self, skewed_cell):
        dv = {"pd_l": np.array([0.0, 0.6]), "ax_l": np.array([0.0, -0.4])}
        i = skewed_cell.read_current(dv)
        assert i[0] > 1e-5
        assert i[1] < 1e-6

    def test_deterministic(self, cell):
        dv = {"pd_l": np.array([0.02]), "ax_l": np.array([-0.01])}
        a = cell.read_current(dv)
        b = cell.read_current(dv)
        np.testing.assert_array_equal(a, b)
