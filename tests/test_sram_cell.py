"""Tests for the 6-T cell and its batched analyses (repro.sram.cell)."""

import numpy as np
import pytest

from repro.circuit import solve_dc
from repro.devices.technology import DeviceGeometry
from repro.sram.cell import DEVICE_NAMES, PAPER_INDEX, SixTransistorCell


class TestConstruction:
    def test_device_names_paper_order(self):
        assert DEVICE_NAMES == ("pd_l", "pd_r", "ax_l", "ax_r", "pu_l", "pu_r")
        assert PAPER_INDEX["M1"] == 0 and PAPER_INDEX["M3"] == 2 and PAPER_INDEX["M5"] == 4

    def test_sigma_per_device(self, cell):
        assert cell.sigma_vth["pu_l"] > cell.sigma_vth["ax_l"] > cell.sigma_vth["pd_l"]

    def test_geometry_override(self):
        c = SixTransistorCell(geometries={"access": DeviceGeometry(0.4, 0.1)})
        assert c.geometries["access"].width == pytest.approx(0.4)

    def test_unknown_geometry_role_raises(self):
        with pytest.raises(KeyError, match="unknown geometry roles"):
            SixTransistorCell(geometries={"nonsense": DeviceGeometry(0.1, 0.1)})

    def test_repr(self, cell):
        assert "SixTransistorCell" in repr(cell)


class TestHalfCellVtc:
    def test_monotone_decreasing(self, cell):
        grid = np.linspace(0, 1.2, 41)
        vtc = cell.half_cell_vtc("left", grid, bl_voltage=1.2)
        assert vtc.shape == (41,)
        assert np.all(np.diff(vtc) < 1e-9)

    def test_read_low_level_raised_by_access(self, cell):
        """During read the access transistor pulls the low node up — the
        classic read-disturb mechanism."""
        grid = np.array([1.2])
        v_read = cell.half_cell_vtc("left", grid, bl_voltage=1.2)[0]
        v_hold = cell.half_cell_vtc("left", grid, bl_voltage=1.2, wl_voltage=0.0)[0]
        assert v_read > v_hold + 0.05
        assert v_hold < 0.02

    def test_write_config_collapses_high_level(self, cell):
        grid = np.array([0.0])
        v_read = cell.half_cell_vtc("left", grid, bl_voltage=1.2)[0]
        v_write = cell.half_cell_vtc("left", grid, bl_voltage=0.0)[0]
        assert v_read > 1.1      # read config: output high ~ vdd
        assert v_write < 0.3     # write config: bitline wins

    def test_batched_mismatch(self, cell):
        grid = np.linspace(0, 1.2, 21)
        dv = {"pd_l": np.array([-0.05, 0.0, 0.05])}
        vtc = cell.half_cell_vtc("left", grid, 1.2, dv)
        assert vtc.shape == (21, 3)
        # Weaker pull-down (higher vth) -> higher low level at full input.
        assert vtc[-1, 2] > vtc[-1, 0]

    def test_sides_symmetric_nominal(self, cell):
        grid = np.linspace(0, 1.2, 21)
        left = cell.half_cell_vtc("left", grid, 1.2)
        right = cell.half_cell_vtc("right", grid, 1.2)
        np.testing.assert_allclose(left, right, atol=1e-9)

    def test_invalid_side_raises(self, cell):
        with pytest.raises(ValueError, match="side"):
            cell.half_cell_vtc("top", np.linspace(0, 1, 5), 1.2)

    def test_2d_grid_raises(self, cell):
        with pytest.raises(ValueError, match="1-D"):
            cell.half_cell_vtc("left", np.zeros((2, 2)), 1.2)

    def test_kcl_residual_zero_at_solution(self, cell):
        grid = np.linspace(0, 1.2, 11)
        vtc = cell.half_cell_vtc("left", grid, 1.2)
        residual = cell._half_cell_residual(
            "left", grid, 1.2, 1.2, {}
        )
        f, _ = residual(vtc)
        assert np.max(np.abs(f)) < 1e-10


class TestBatchIndependence:
    """Regression: results must not depend on batch composition.

    An early version of the monotone node solver could hurl an
    already-converged lane to the midpoint of a stale bracket when slower
    batch-mates kept the iteration alive — every batched analysis silently
    depended on its companions (caught via importance-sampling weight
    explosions on the write-margin metric).
    """

    def test_vtc_alone_equals_in_mixed_batch(self, cell, rng):
        grid = np.linspace(0, 1.2, 41)
        # A benign sample paired with an extreme one that converges slowly.
        benign = {name: 0.02 for name in DEVICE_NAMES}
        mixed = {
            name: np.array([0.02, 0.35 if name == "pd_l" else -0.25])
            for name in DEVICE_NAMES
        }
        alone = cell.half_cell_vtc(
            "left", grid, 0.0, {k: np.array([v]) for k, v in benign.items()}
        )
        paired = cell.half_cell_vtc("left", grid, 0.0, mixed)
        np.testing.assert_allclose(paired[:, 0], alone[:, 0], atol=1e-9)

    def test_metric_chunk_vs_single(self, wnm_metric, rng):
        x = rng.uniform(-5, 5, (64, 6))
        chunked = wnm_metric(x)
        singles = np.concatenate([wnm_metric(x[i : i + 1]) for i in range(64)])
        np.testing.assert_allclose(chunked, singles, atol=1e-9)


class TestReadState:
    def test_nominal_holds_stored_zero(self, cell):
        vq, vqb = cell.solve_read_state()
        assert float(vq) < 0.45
        assert float(vqb) > 1.1

    def test_stored_one_mirrors(self, cell):
        vq, vqb = cell.solve_read_state(stored_zero_at_q=False)
        assert float(vq) > 1.1
        assert float(vqb) < 0.45

    def test_batched(self, cell):
        dv = {"pd_l": np.linspace(-0.05, 0.05, 5)}
        vq, vqb = cell.solve_read_state(dv)
        assert vq.shape == (5,)
        # Weaker pull-down lets the access raise the low node further.
        assert np.all(np.diff(vq) > 0)

    def test_extreme_mismatch_flips_cell(self, skewed_cell):
        """Large (weak pull-down, strong access) mismatch must upset the
        read: the solver lands on the flipped state."""
        dv = {"pd_l": np.array([0.0, 0.5]), "ax_l": np.array([0.0, -0.4])}
        vq, _ = skewed_cell.solve_read_state(dv)
        assert vq[0] < 0.5          # nominal holds
        assert vq[1] > 0.8          # upset: q node flipped high

    def test_matches_general_netlist_solver(self, cell):
        """Cross-validation: the specialised read solver must agree with the
        general MNA solver on the full-cell netlist."""
        circuit = cell.build_circuit()
        dv = {"pd_l": 0.03, "ax_l": -0.02}
        sol = solve_dc(
            circuit,
            {"vdd": 1.2, "wl": 1.2, "bl": 1.2, "blb": 1.2},
            element_params={k: {"delta_vth": v} for k, v in dv.items()},
            initial={"q": 0.05, "qb": 1.2},
        )
        vq, vqb = cell.solve_read_state(dv)
        assert float(sol.voltage("q")) == pytest.approx(float(vq), abs=1e-6)
        assert float(sol.voltage("qb")) == pytest.approx(float(vqb), abs=1e-6)


class TestReadCurrent:
    def test_nominal_positive(self, cell):
        i = cell.read_current()
        assert float(i) > 1e-5

    def test_weaker_access_less_current(self, cell):
        dv = {"ax_l": np.array([0.0, 0.1])}
        i = cell.read_current(dv)
        assert i[1] < i[0]

    def test_flip_collapses_current(self, skewed_cell):
        dv = {"pd_l": np.array([0.0, 0.6]), "ax_l": np.array([0.0, -0.4])}
        i = skewed_cell.read_current(dv)
        assert i[0] > 1e-5
        assert i[1] < 1e-6

    def test_deterministic(self, cell):
        dv = {"pd_l": np.array([0.02]), "ax_l": np.array([-0.01])}
        a = cell.read_current(dv)
        b = cell.read_current(dv)
        np.testing.assert_array_equal(a, b)
