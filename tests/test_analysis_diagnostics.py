"""Tests for the method-agreement diagnostics (repro.analysis.diagnostics)."""

import math

import numpy as np
import pytest

from repro.analysis.diagnostics import check_agreement
from repro.mc.results import EstimationResult


def result(name, estimate, rel_err):
    return EstimationResult(
        method=name,
        failure_probability=estimate,
        relative_error=rel_err,
        n_first_stage=0,
        n_second_stage=1000,
    )


class TestCheckAgreement:
    def test_consistent_panel(self):
        results = {
            "A": result("A", 1.00e-5, 0.05),
            "B": result("B", 1.02e-5, 0.05),
        }
        report = check_agreement(results)
        assert report.consistent
        assert report.conflicts == []

    def test_conflicting_panel(self):
        """The Table II situation: a biased method with a confident (small)
        CI far below an accurate one."""
        results = {
            "G-C": result("G-C", 4.6e-6, 0.10),
            "G-S": result("G-S", 1.85e-5, 0.07),
        }
        report = check_agreement(results)
        assert not report.consistent
        assert ("G-C", "G-S") in report.conflicts or (
            "G-S", "G-C") in report.conflicts

    def test_recommends_largest_estimate(self):
        """Coverage bias is downward, so trust the largest estimate."""
        results = {
            "low": result("low", 5e-6, 0.05),
            "high": result("high", 2e-5, 0.05),
            "mid": result("mid", 1e-5, 0.05),
        }
        assert check_agreement(results).recommended == "high"

    def test_infinite_error_excluded_from_conflicts(self):
        results = {
            "dead": result("dead", 0.0, math.inf),
            "ok": result("ok", 1e-5, 0.05),
        }
        report = check_agreement(results)
        assert report.consistent  # cannot conflict with an unbounded CI
        assert report.recommended == "ok"

    def test_single_result_raises(self):
        with pytest.raises(ValueError, match="at least two"):
            check_agreement({"A": result("A", 1e-5, 0.05)})

    def test_summary_text(self):
        results = {
            "A": result("A", 1e-5, 0.05),
            "B": result("B", 9e-5, 0.02),
        }
        report = check_agreement(results)
        text = report.summary()
        assert "INCONSISTENT" in text
        assert "recommended: B" in text

    def test_consistent_summary_text(self):
        results = {
            "A": result("A", 1.0e-5, 0.2),
            "B": result("B", 1.1e-5, 0.2),
        }
        text = check_agreement(results).summary()
        assert "mutually consistent" in text


class TestEndToEndDiagnostic:
    def test_flags_gc_on_arc_problem(self):
        """Full pipeline: on the arc region G-C's biased estimate must be
        flagged against G-S, and G-S recommended."""
        from repro.analysis.experiments import compare_methods
        from repro.synthetic import AnnularArcMetric

        prob = AnnularArcMetric(4.5, 0.6, 0.9).problem()
        results = compare_methods(
            prob, methods=("G-C", "G-S"), seed=4,
            n_second_stage=6000, n_gibbs=300,
        )
        report = check_agreement(results)
        assert not report.consistent
        assert report.recommended == "G-S"
