"""Tests for 1-D conditional sampling (repro.gibbs.inverse_transform)."""

import numpy as np
import pytest
from scipy import stats

from repro.gibbs.inverse_transform import sample_conditional_1d
from repro.stats.distributions import ChiDistribution, StandardNormal


def interval_indicator(lo, hi):
    def fails(v):
        v = np.atleast_1d(v)
        return (v >= lo) & (v <= hi)

    return fails


class TestSampleConditional:
    def test_draw_inside_failure_region(self, rng):
        fails = interval_indicator(1.0, 3.0)
        for _ in range(50):
            value, interval = sample_conditional_1d(
                fails, 2.0, StandardNormal(), -8.0, 8.0, rng, bisect_iters=8
            )
            assert 1.0 - 0.05 <= value <= 3.0 + 0.05
            assert interval.n_simulations > 0

    def test_draws_follow_truncated_normal(self, rng):
        """Algorithm 3 end-to-end: the conditional draws must follow the
        truncated standard Normal over the failure slice (Eq. 22)."""
        fails = interval_indicator(1.0, 2.5)
        draws = np.array([
            sample_conditional_1d(
                fails, 1.5, StandardNormal(), -8.0, 8.0, rng, bisect_iters=14
            )[0]
            for _ in range(3000)
        ])
        ks = stats.kstest(draws, stats.truncnorm(1.0, 2.5).cdf)
        assert ks.pvalue > 1e-3

    def test_chi_base_distribution(self, rng):
        """Radius conditional (Eq. 24): truncated Chi(M) draws."""
        fails = interval_indicator(2.0, 4.0)
        chi = ChiDistribution(6)
        draws = np.array([
            sample_conditional_1d(
                fails, 3.0, chi, 1e-9, 12.0, rng, bisect_iters=14
            )[0]
            for _ in range(2000)
        ])
        frozen = stats.chi(6)
        def trunc_cdf(r):
            return (frozen.cdf(r) - frozen.cdf(2.0)) / (
                frozen.cdf(4.0) - frozen.cdf(2.0)
            )
        ks = stats.kstest(draws, trunc_cdf)
        assert ks.pvalue > 1e-3

    def test_degenerate_interval_keeps_current(self, rng):
        """A slice narrower than the search resolution: the sampler must
        keep the current value instead of crashing."""
        fails = interval_indicator(0.9999, 1.0001)
        value, _ = sample_conditional_1d(
            fails, 1.0, StandardNormal(), -8.0, 8.0, rng, bisect_iters=4
        )
        assert value == pytest.approx(1.0)

    def test_deterministic_with_seed(self):
        fails = interval_indicator(0.0, 2.0)
        a = sample_conditional_1d(
            fails, 1.0, StandardNormal(), -8.0, 8.0, np.random.default_rng(1)
        )[0]
        b = sample_conditional_1d(
            fails, 1.0, StandardNormal(), -8.0, 8.0, np.random.default_rng(1)
        )[0]
        assert a == b

    def test_deep_tail_zero_mass_interval_keeps_current(self, rng):
        """An interval so deep in the tail that its CDF mass underflows:
        keep the current point rather than fabricating a draw."""
        fails = interval_indicator(38.0, 39.0)
        value, _ = sample_conditional_1d(
            fails, 38.5, StandardNormal(), -40.0, 40.0, rng, bisect_iters=6
        )
        assert value == pytest.approx(38.5)
