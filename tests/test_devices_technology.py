"""Tests for technology parameters and the Pelgrom model (repro.devices.technology)."""

import math

import pytest

from repro.devices.mosfet import NMOS, PMOS
from repro.devices.technology import (
    DEFAULT_GEOMETRIES,
    DeviceGeometry,
    Technology,
    default_technology,
)


class TestDeviceGeometry:
    def test_area_and_ratio(self):
        g = DeviceGeometry(width=0.3, length=0.1)
        assert g.area == pytest.approx(0.03)
        assert g.ratio == pytest.approx(3.0)

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            DeviceGeometry(width=0.0, length=0.1)
        with pytest.raises(ValueError):
            DeviceGeometry(width=0.1, length=-0.1)


class TestTechnology:
    tech = default_technology()

    def test_default_supply(self):
        assert self.tech.vdd == pytest.approx(1.2)

    def test_nmos_params(self):
        g = DeviceGeometry(0.3, 0.1)
        p = self.tech.nmos(g)
        assert p.polarity == NMOS
        assert p.beta == pytest.approx(self.tech.kp_n * 3.0)
        assert p.vth == pytest.approx(self.tech.vth_n)

    def test_pmos_params(self):
        g = DeviceGeometry(0.15, 0.1)
        p = self.tech.pmos(g)
        assert p.polarity == PMOS
        assert p.beta == pytest.approx(self.tech.kp_p * 1.5)

    def test_pelgrom_sigma(self):
        g = DeviceGeometry(0.2, 0.1)
        expected = self.tech.avt / math.sqrt(0.02)
        assert self.tech.sigma_vth(g) == pytest.approx(expected)

    def test_smaller_device_more_mismatch(self):
        small = DeviceGeometry(0.12, 0.1)
        large = DeviceGeometry(0.4, 0.1)
        assert self.tech.sigma_vth(small) > self.tech.sigma_vth(large)

    def test_default_geometries_cover_roles(self):
        assert set(DEFAULT_GEOMETRIES) == {"pull_down", "access", "pull_up"}

    def test_cell_ratio_above_one(self):
        """Default sizing must be read-stable: pull-down stronger than access."""
        ratio = (
            DEFAULT_GEOMETRIES["pull_down"].ratio
            / DEFAULT_GEOMETRIES["access"].ratio
        )
        assert ratio > 1.0
