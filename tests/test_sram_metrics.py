"""Tests for the SRAM performance metrics (repro.sram.metrics)."""

import numpy as np
import pytest

from repro.sram.metrics import (
    ReadCurrentMetric,
    ReadNoiseMarginMetric,
    SramMetric,
    WriteNoiseMarginMetric,
)


class TestInterface:
    def test_dimension_defaults(self, rnm_metric, iread_metric):
        assert rnm_metric.dimension == 6
        assert iread_metric.dimension == 2

    def test_read_current_default_devices_are_m1_m3(self, iread_metric):
        assert iread_metric.mismatch.devices == ("pd_l", "ax_l")
        assert iread_metric.mismatch.paper_labels() == ("dVth1", "dVth3")

    def test_dimension_mismatch_raises(self, rnm_metric):
        with pytest.raises(ValueError):
            rnm_metric(np.zeros((3, 4)))

    def test_single_point_accepted(self, rnm_metric):
        out = rnm_metric(np.zeros(6))
        assert out.shape == (1,)

    def test_invalid_chunk_size_raises(self, cell):
        with pytest.raises(ValueError, match="chunk_size"):
            ReadCurrentMetric(cell, chunk_size=0)

    def test_base_class_not_implemented(self, cell):
        metric = SramMetric(cell)
        with pytest.raises(NotImplementedError):
            metric(np.zeros((1, 6)))

    def test_chunking_invariance(self, cell):
        """Evaluating in chunks of 3 must equal one big batch."""
        big = ReadCurrentMetric(cell, chunk_size=4096)
        small = ReadCurrentMetric(cell, chunk_size=3)
        x = np.random.default_rng(0).standard_normal((10, 2))
        np.testing.assert_allclose(big(x), small(x), rtol=1e-12)


class TestReadNoiseMargin:
    def test_nominal_value_plausible(self, rnm_metric):
        rnm = rnm_metric(np.zeros(6))[0]
        assert 0.15 < rnm < 0.35

    def test_weak_pulldown_degrades(self, rnm_metric):
        x = np.zeros((2, 6))
        x[1, 0] = 4.0  # M1 vth up
        vals = rnm_metric(x)
        assert vals[1] < vals[0]

    def test_strong_access_degrades(self, rnm_metric):
        x = np.zeros((2, 6))
        x[1, 2] = -4.0  # M3 vth down
        vals = rnm_metric(x)
        assert vals[1] < vals[0]

    def test_goes_negative_continuously(self, rnm_metric):
        """The signed margin must cross zero smoothly along the failure
        direction — the property binary search depends on."""
        alphas = np.linspace(0, 16, 9)
        x = np.zeros((9, 6))
        x[:, 0] = alphas
        x[:, 2] = -alphas
        vals = rnm_metric(x)
        assert vals[0] > 0 and vals[-1] < 0
        assert np.all(np.diff(vals) < 0.02)  # essentially monotone decline

    def test_deterministic(self, rnm_metric, rng):
        x = rng.standard_normal((5, 6))
        np.testing.assert_array_equal(rnm_metric(x), rnm_metric(x))


class TestWriteNoiseMargin:
    def test_nominal_value_plausible(self, wnm_metric):
        wnm = wnm_metric(np.zeros(6))[0]
        assert 0.3 < wnm < 0.6

    def test_weak_access_degrades(self, wnm_metric):
        x = np.zeros((2, 6))
        x[1, 2] = 4.0  # M3 vth up: write path weaker
        vals = wnm_metric(x)
        assert vals[1] < vals[0]

    def test_strong_pullup_degrades(self, wnm_metric):
        x = np.zeros((2, 6))
        x[1, 4] = -4.0  # M5 vth down: retention stronger
        vals = wnm_metric(x)
        assert vals[1] < vals[0]

    def test_goes_negative_at_extreme_corner(self, wnm_metric):
        x = np.zeros((1, 6))
        x[0, 2] = 14.0
        x[0, 4] = -14.0
        assert wnm_metric(x)[0] < 0


class TestReadCurrent:
    def test_nominal_plausible(self, iread_metric):
        i = iread_metric(np.zeros(2))[0]
        assert 5e-5 < i < 2e-4

    def test_monotone_weakening(self, iread_metric):
        x = np.stack([np.linspace(0, 4, 5), np.linspace(0, 4, 5)], axis=1)
        vals = iread_metric(x)
        assert np.all(np.diff(vals) < 0)

    def test_upset_region_collapses_current(self, iread_metric):
        # Strong access + weak pull-down: static read upset (Section V-B).
        vals = iread_metric(np.array([[5.0, -4.0]]))
        assert vals[0] < 1e-6

    def test_six_device_variant(self, cell):
        metric = ReadCurrentMetric(
            cell, devices=("pd_l", "pd_r", "ax_l", "ax_r", "pu_l", "pu_r")
        )
        assert metric.dimension == 6
        out = metric(np.zeros(6))
        assert out[0] > 1e-5
