"""Tests for the multivariate Normal (repro.stats.mvnormal)."""

import numpy as np
import pytest
from scipy import stats

from repro.stats.mvnormal import MultivariateNormal


def random_spd(rng, dim):
    a = rng.standard_normal((dim, dim))
    return a @ a.T + dim * np.eye(dim) * 0.1


class TestConstruction:
    def test_standard(self):
        mvn = MultivariateNormal.standard(4)
        np.testing.assert_array_equal(mvn.mean, np.zeros(4))
        np.testing.assert_array_equal(mvn.cov, np.eye(4))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="cov shape"):
            MultivariateNormal(np.zeros(3), np.eye(2))

    def test_non_vector_mean_raises(self):
        with pytest.raises(ValueError, match="mean"):
            MultivariateNormal(np.zeros((2, 2)), np.eye(2))

    def test_indefinite_cov_raises(self):
        cov = np.array([[1.0, 2.0], [2.0, 1.0]])  # eigenvalues 3, -1
        with pytest.raises(ValueError, match="positive definite"):
            MultivariateNormal(np.zeros(2), cov)


class TestLogpdf:
    def test_matches_scipy(self, rng):
        dim = 5
        mean = rng.standard_normal(dim)
        cov = random_spd(rng, dim)
        mvn = MultivariateNormal(mean, cov)
        x = rng.standard_normal((20, dim))
        expected = stats.multivariate_normal(mean, cov).logpdf(x)
        np.testing.assert_allclose(mvn.logpdf(x), expected, rtol=1e-10)

    def test_pdf_exponentiates(self, rng):
        mvn = MultivariateNormal.standard(3)
        x = rng.standard_normal((5, 3))
        np.testing.assert_allclose(mvn.pdf(x), np.exp(mvn.logpdf(x)))

    def test_single_point_accepted(self):
        mvn = MultivariateNormal.standard(2)
        out = mvn.logpdf(np.array([0.0, 0.0]))
        assert out.shape == (1,)
        assert out[0] == pytest.approx(-np.log(2 * np.pi))

    def test_mahalanobis(self, rng):
        dim = 4
        cov = random_spd(rng, dim)
        mean = rng.standard_normal(dim)
        mvn = MultivariateNormal(mean, cov)
        x = rng.standard_normal((7, dim))
        expected = np.array(
            [ (p - mean) @ np.linalg.solve(cov, p - mean) for p in x ]
        )
        np.testing.assert_allclose(mvn.mahalanobis(x), expected, rtol=1e-9)


class TestSampling:
    def test_sample_shape(self, rng):
        mvn = MultivariateNormal.standard(3)
        assert mvn.sample(11, rng).shape == (11, 3)

    def test_sample_moments(self, rng):
        mean = np.array([1.0, -2.0])
        cov = np.array([[2.0, 0.8], [0.8, 1.0]])
        mvn = MultivariateNormal(mean, cov)
        draws = mvn.sample(200_000, rng)
        np.testing.assert_allclose(draws.mean(axis=0), mean, atol=0.02)
        np.testing.assert_allclose(np.cov(draws, rowvar=False), cov, atol=0.03)

    def test_deterministic_with_seed(self):
        mvn = MultivariateNormal.standard(2)
        a = mvn.sample(5, np.random.default_rng(1))
        b = mvn.sample(5, np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)


class TestFit:
    def test_fit_recovers_moments(self, rng):
        mean = np.array([0.5, -1.0, 2.0])
        cov = random_spd(rng, 3)
        draws = MultivariateNormal(mean, cov).sample(100_000, rng)
        fitted = MultivariateNormal.fit(draws, ridge=0.0, min_variance=0.0)
        np.testing.assert_allclose(fitted.mean, mean, atol=0.03)
        np.testing.assert_allclose(fitted.cov, cov, atol=0.1)

    def test_fit_needs_two_samples(self):
        with pytest.raises(ValueError, match="at least 2"):
            MultivariateNormal.fit(np.zeros((1, 3)))

    def test_degenerate_cloud_still_fits(self):
        """A rank-deficient sample cloud (all points on a line) must still
        yield a proper density thanks to the variance floor."""
        t = np.linspace(0, 1, 50)
        samples = np.stack([t, 2 * t, -t], axis=1)
        fitted = MultivariateNormal.fit(samples)
        assert np.all(np.isfinite(fitted.logpdf(samples)))
        assert np.all(np.diag(fitted.cov) >= 1e-4 - 1e-12)

    def test_min_variance_floor(self):
        samples = np.random.default_rng(0).standard_normal((100, 2))
        samples[:, 1] *= 1e-6  # nearly collapsed second axis
        fitted = MultivariateNormal.fit(samples, min_variance=0.01)
        assert fitted.cov[1, 1] >= 0.01 - 1e-12
