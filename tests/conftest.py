"""Shared fixtures for the test suite.

Expensive objects (the SRAM cell and its metrics) are session-scoped: they
are immutable after construction, so sharing them across tests is safe and
keeps the suite fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import available_backends, get_namespace
from repro.sram import SixTransistorCell
from repro.sram.metrics import (
    ReadCurrentMetric,
    ReadNoiseMarginMetric,
    WriteNoiseMarginMetric,
)
from repro.sram.problems import fragile_cell


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(params=available_backends())
def backend_xp(request):
    """Array namespace of every backend installed on this machine.

    Parametrizes over ``numpy`` plus whichever of torch/cupy import
    successfully, so backend-generic kernel tests run against everything
    available and silently narrow to numpy-only elsewhere.
    """
    return get_namespace(request.param)


@pytest.fixture(scope="session")
def cell():
    return SixTransistorCell()

@pytest.fixture(scope="session")
def skewed_cell():
    return fragile_cell()


@pytest.fixture(scope="session")
def rnm_metric(cell):
    return ReadNoiseMarginMetric(cell)


@pytest.fixture(scope="session")
def wnm_metric(cell):
    return WriteNoiseMarginMetric(cell)


@pytest.fixture(scope="session")
def iread_metric(skewed_cell):
    return ReadCurrentMetric(skewed_cell)
