"""Tests for failure-rate sweeps (repro.analysis.sweep)."""

import numpy as np
import pytest

from repro.analysis.sweep import failure_rate_sweep, sweep_table_rows
from repro.synthetic import LinearMetric


def halfspace_family(offset):
    """Problem family with exact answers: P_f = Phi(-offset)."""
    return LinearMetric(np.array([1.0, 0.0]), offset).problem(f"hs{offset}")


class TestFailureRateSweep:
    def test_sweep_tracks_exact_answers(self):
        offsets = [3.0, 3.5, 4.0]
        points = failure_rate_sweep(
            halfspace_family, offsets, method="G-S", seed=1,
            n_second_stage=3000, n_gibbs=150, doe_budget=60,
        )
        for offset, point in zip(offsets, points):
            exact = halfspace_family(offset).exact_failure_probability
            assert point.value == offset
            assert point.result.failure_probability == pytest.approx(
                exact, rel=0.35
            )

    def test_monotone_in_spec(self):
        """Tighter spec (larger offset) must give a smaller failure rate."""
        points = failure_rate_sweep(
            halfspace_family, [3.0, 4.0, 5.0], method="MNIS", seed=2,
            n_second_stage=4000, doe_budget=60,
        )
        rates = [p.result.failure_probability for p in points]
        assert rates[0] > rates[1] > rates[2]

    def test_grid_refinement_stability(self):
        """Adding sweep values must not change existing points' results
        (child streams are independent per index... so extending the list
        preserves the prefix)."""
        a = failure_rate_sweep(
            halfspace_family, [3.0, 4.0], method="MNIS", seed=3,
            n_second_stage=500, doe_budget=60,
        )
        b = failure_rate_sweep(
            halfspace_family, [3.0, 4.0, 5.0], method="MNIS", seed=3,
            n_second_stage=500, doe_budget=60,
        )
        assert (
            a[0].result.failure_probability
            == b[0].result.failure_probability
        )
        assert (
            a[1].result.failure_probability
            == b[1].result.failure_probability
        )

    def test_empty_values_raises(self):
        with pytest.raises(ValueError):
            failure_rate_sweep(halfspace_family, [])

    def test_table_rows(self):
        points = failure_rate_sweep(
            halfspace_family, [3.0], method="MNIS", seed=4,
            n_second_stage=400, doe_budget=60,
        )
        rows = sweep_table_rows(points)
        assert rows[0][0] == 3.0
        assert rows[0][3] == points[0].result.n_total
