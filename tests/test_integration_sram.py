"""Integration tests: full estimation flows on the SRAM circuit problems.

These run the real transistor-level substrate end-to-end and are therefore
the slowest tests in the suite; budgets are kept small — they check
consistency and mechanics, not publication-grade accuracy (the benchmark
harness does that with full budgets).
"""

import numpy as np
import pytest

from repro.analysis.experiments import compare_methods, run_method
from repro.baselines.mnis import minimum_norm_importance_sampling
from repro.gibbs.two_stage import gibbs_importance_sampling
from repro.mc.counter import CountedMetric
from repro.sram.problems import (
    read_current_problem,
    read_noise_margin_problem,
    write_noise_margin_problem,
)


@pytest.fixture(scope="module")
def iread_problem():
    return read_current_problem()


class TestReadCurrentFlow:
    """The 2-D Section V-B problem: fast metric, good integration target."""

    def test_gs_estimate_in_expected_band(self, iread_problem):
        result = gibbs_importance_sampling(
            iread_problem.metric, iread_problem.spec,
            coordinate_system="spherical",
            n_gibbs=200, n_second_stage=3000, rng=21,
        )
        # Golden MC band (see EXPERIMENTS.md): ~1.9e-5.
        assert 8e-6 < result.failure_probability < 4e-5
        assert np.isfinite(result.relative_error)

    def test_gc_underestimates_nonconvex_region(self, iread_problem):
        """The Table II signature, at reduced budget: G-C's trapped chain
        must yield a notably smaller estimate than G-S."""
        gs = gibbs_importance_sampling(
            iread_problem.metric, iread_problem.spec,
            coordinate_system="spherical",
            n_gibbs=200, n_second_stage=3000, rng=22,
        )
        gc = gibbs_importance_sampling(
            iread_problem.metric, iread_problem.spec,
            coordinate_system="cartesian",
            n_gibbs=200, n_second_stage=3000, rng=22,
        )
        assert gc.failure_probability < 0.7 * gs.failure_probability

    def test_mnis_runs(self, iread_problem):
        result = minimum_norm_importance_sampling(
            iread_problem.metric, iread_problem.spec,
            n_first_stage=300, n_second_stage=2000, rng=23,
        )
        assert result.failure_probability > 0

    def test_sim_counting_through_full_flow(self, iread_problem):
        counted = CountedMetric(iread_problem.metric, iread_problem.dimension)
        result = gibbs_importance_sampling(
            counted, iread_problem.spec,
            n_gibbs=60, n_second_stage=500, rng=24,
        )
        assert counted.count == result.n_total


@pytest.mark.slow
class TestNoiseMarginFlows:
    """6-D flows on the butterfly metrics (slow: sequential chains)."""

    def test_gs_rnm(self):
        prob = read_noise_margin_problem()
        result = gibbs_importance_sampling(
            prob.metric, prob.spec, coordinate_system="spherical",
            n_gibbs=120, n_second_stage=1500, doe_budget=200, rng=31,
        )
        # Loose band around the converged value ~7.3e-6.
        assert 1e-6 < result.failure_probability < 5e-5

    def test_gc_wnm(self):
        prob = write_noise_margin_problem()
        result = gibbs_importance_sampling(
            prob.metric, prob.spec, coordinate_system="cartesian",
            n_gibbs=120, n_second_stage=1500, doe_budget=200, rng=32,
        )
        assert 5e-7 < result.failure_probability < 5e-5

    def test_method_panel_order_of_magnitude_agreement(self):
        prob = read_noise_margin_problem()
        results = compare_methods(
            prob, methods=("MNIS", "G-S"), seed=33,
            n_second_stage=1500, n_gibbs=120, doe_budget=200,
        )
        a = results["MNIS"].failure_probability
        b = results["G-S"].failure_probability
        assert 0.2 < a / b < 5.0
