"""Tests for the dynamic write-time metric (repro.sram.dynamic)."""

import numpy as np
import pytest

from repro.circuit import Circuit, simulate_transient, step_waveform
from repro.sram.dynamic import WriteTimeMetric
from repro.sram.problems import write_time_problem


class TestWriteFlipTime:
    def test_nominal_in_expected_band(self, cell):
        t = cell.write_flip_time()
        assert 5e-12 < float(t) < 5e-11

    def test_weak_access_slows_write(self, cell):
        dv = {"ax_l": np.array([0.0, 0.15])}
        t = cell.write_flip_time(dv)
        assert t[1] > t[0]

    def test_strong_pullup_slows_write(self, cell):
        dv = {"pu_l": np.array([0.0, -0.15])}
        t = cell.write_flip_time(dv)
        assert t[1] > t[0]

    def test_hard_failure_saturates_at_window(self, cell):
        dv = {"ax_l": np.array([0.9]), "pu_l": np.array([-0.9])}
        t = cell.write_flip_time(dv, t_window=100e-12)
        assert t[0] == pytest.approx(100e-12)

    def test_invalid_parameters_raise(self, cell):
        with pytest.raises(ValueError):
            cell.write_flip_time(dt=-1.0)
        with pytest.raises(ValueError):
            cell.write_flip_time(node_capacitance=0.0)

    def test_batch_matches_singles(self, cell, rng):
        x = rng.standard_normal((16, 6)) * 0.03
        deltas = {
            name: x[:, i]
            for i, name in enumerate(
                ("pd_l", "pd_r", "ax_l", "ax_r", "pu_l", "pu_r")
            )
        }
        batch = cell.write_flip_time(deltas)
        singles = np.array([
            cell.write_flip_time({k: v[i : i + 1] for k, v in deltas.items()})[0]
            for i in range(16)
        ])
        np.testing.assert_allclose(batch, singles, rtol=1e-9)

    def test_matches_generic_transient_engine(self, cell):
        """Cross-validate the fast path against the netlist transient
        engine, with the access device stamped in the same (drain = q)
        orientation the fast path uses."""
        vdd = cell.vdd
        c = Circuit("write_tb")
        params = {n: cell.devices[n].params for n in cell.devices}
        c.add_mosfet("pd_l", params["pd_l"], drain="q", gate="qb", source="0")
        c.add_mosfet("pu_l", params["pu_l"], drain="q", gate="qb", source="vdd", bulk="vdd")
        c.add_mosfet("ax_l", params["ax_l"], drain="q", gate="wl", source="bl")
        c.add_mosfet("pd_r", params["pd_r"], drain="qb", gate="q", source="0")
        c.add_mosfet("pu_r", params["pu_r"], drain="qb", gate="q", source="vdd", bulk="vdd")
        c.add_mosfet("ax_r", params["ax_r"], drain="blb", gate="wl", source="qb")
        dv = {"pd_l": 0.02, "ax_l": -0.03, "pu_r": 0.04}
        res = simulate_transient(
            c,
            sources={"vdd": vdd, "wl": step_waveform(1e-15, 0.0, vdd),
                     "bl": 0.0, "blb": vdd},
            capacitances={"q": 5e-15, "qb": 5e-15},
            t_stop=150e-12,
            dt=1e-12,
            element_params={k: {"delta_vth": v} for k, v in dv.items()},
            initial={"q": vdd, "qb": 0.0},
        )
        t_generic = res.crossing_time("q", 0.5 * vdd, rising=False)
        t_fast = cell.write_flip_time(
            {k: np.array([v]) for k, v in dv.items()}
        )
        assert t_fast[0] == pytest.approx(float(np.asarray(t_generic)), rel=0.05)


class TestWriteTimeMetric:
    def test_interface(self, cell):
        metric = WriteTimeMetric(cell)
        assert metric.dimension == 6
        out = metric(np.zeros((2, 6)))
        assert out.shape == (2,)

    def test_invalid_capacitance_raises(self, cell):
        with pytest.raises(ValueError):
            WriteTimeMetric(cell, node_capacitance=0.0)

    def test_degradation_direction(self, cell):
        metric = WriteTimeMetric(cell)
        x = np.zeros((2, 6))
        x[1, 2] = 4.0  # weak access
        times = metric(x)
        assert times[1] > times[0]


class TestWriteTimeProblem:
    def test_factory(self):
        prob = write_time_problem()
        assert prob.name == "twrite"
        assert not prob.spec.fail_below  # fails when too SLOW

    def test_nominal_passes(self):
        prob = write_time_problem()
        assert not prob.indicator(np.zeros((1, 6)))[0]

    def test_failure_reachable(self):
        prob = write_time_problem()
        x = np.zeros((1, 6))
        x[0, 2], x[0, 4] = 8.0, -8.0
        assert prob.indicator(x)[0]
