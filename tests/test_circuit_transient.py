"""Tests for the backward-Euler transient engine (repro.circuit.transient)."""

import numpy as np
import pytest

from repro.circuit import (
    Circuit,
    pulse_waveform,
    simulate_transient,
    step_waveform,
)
from repro.devices.mosfet import NMOS, PMOS, MosfetParams

NPARAMS = MosfetParams(polarity=NMOS, vth=0.35, beta=9e-4, n=1.35)
PPARAMS = MosfetParams(polarity=PMOS, vth=0.35, beta=1.5e-4, n=1.45)


def rc_circuit(r=1000.0):
    c = Circuit("rc")
    c.add_resistor("r1", r, "vin", "out")
    return c


class TestRcStep:
    """Analytic reference: RC step response v(t) = V (1 - exp(-t/RC))."""

    def test_matches_analytic_solution(self):
        r, cap = 1000.0, 1e-12  # tau = 1 ns
        result = simulate_transient(
            rc_circuit(r),
            sources={"vin": 1.0},
            capacitances={"out": cap},
            t_stop=5e-9,
            dt=1e-11,
        )
        tau = r * cap
        expected = 1.0 - np.exp(-result.time / tau)
        # Backward Euler is first order: tolerance scales with dt/tau.
        np.testing.assert_allclose(
            result.waveform("out"), expected, atol=0.02
        )
        assert result.converged

    def test_converges_to_dc_value(self):
        result = simulate_transient(
            rc_circuit(), {"vin": 2.5}, {"out": 1e-13}, t_stop=5e-9, dt=1e-11
        )
        assert result.waveform("out")[-1] == pytest.approx(2.5, abs=1e-3)

    def test_crossing_time_of_rc(self):
        r, cap = 1000.0, 1e-12
        result = simulate_transient(
            rc_circuit(r), {"vin": 1.0}, {"out": cap}, t_stop=5e-9, dt=5e-12
        )
        t_half = result.crossing_time("out", 0.5)
        # Analytic: tau ln 2 = 0.693 ns (BE first-order error tolerated).
        assert float(t_half) == pytest.approx(0.693e-9, rel=0.05)

    def test_crossing_never_is_nan(self):
        result = simulate_transient(
            rc_circuit(), {"vin": 1.0}, {"out": 1e-12}, t_stop=1e-10, dt=1e-11
        )
        assert np.isnan(float(result.crossing_time("out", 0.99)))

    def test_falling_crossing(self):
        result = simulate_transient(
            rc_circuit(),
            {"vin": step_waveform(1e-9, 1.0, 0.0)},
            {"out": 1e-12},
            t_stop=4e-9,
            dt=1e-11,
            initial={"out": 1.0},
        )
        t_fall = result.crossing_time("out", 0.5, rising=False)
        assert float(t_fall) == pytest.approx(1e-9 + 0.693e-9, rel=0.05)


class TestWaveforms:
    def test_step(self):
        w = step_waveform(1.0, 0.0, 5.0)
        assert w(0.5) == 0.0 and w(1.0) == 5.0

    def test_pulse(self):
        w = pulse_waveform(1.0, 2.0, 0.0, 3.0)
        assert w(0.5) == 0.0 and w(1.5) == 3.0 and w(2.5) == 0.0

    def test_invalid_pulse_raises(self):
        with pytest.raises(ValueError):
            pulse_waveform(2.0, 1.0, 0.0, 1.0)


class TestValidation:
    def test_bad_dt_raises(self):
        with pytest.raises(ValueError):
            simulate_transient(rc_circuit(), {"vin": 1.0}, {}, 1e-9, 0.0)

    def test_unknown_source_node_raises(self):
        with pytest.raises(KeyError, match="source node"):
            simulate_transient(
                rc_circuit(), {"bogus": 1.0}, {}, 1e-9, 1e-10
            )

    def test_negative_capacitance_raises(self):
        with pytest.raises(ValueError, match="capacitances"):
            simulate_transient(
                rc_circuit(), {"vin": 1.0}, {"out": -1e-12}, 1e-9, 1e-10
            )

    def test_unknown_element_param_raises(self):
        with pytest.raises(KeyError):
            simulate_transient(
                rc_circuit(), {"vin": 1.0}, {"out": 1e-12}, 1e-9, 1e-10,
                element_params={"nope": {"delta_vth": 0.0}},
            )


class TestInverterTransient:
    def inverter(self):
        c = Circuit("inv")
        c.add_mosfet("mn", NPARAMS, drain="out", gate="in", source="0")
        c.add_mosfet("mp", PPARAMS, drain="out", gate="in", source="vdd", bulk="vdd")
        return c

    def test_output_falls_on_input_step(self):
        result = simulate_transient(
            self.inverter(),
            sources={"vdd": 1.2, "in": step_waveform(1e-10, 0.0, 1.2)},
            capacitances={"out": 5e-15},
            t_stop=1e-9,
            dt=2e-12,
            initial={"out": 1.2},
        )
        wave = result.waveform("out")
        assert wave[0] == pytest.approx(1.2, abs=0.05)
        assert wave[-1] < 0.05

    def test_batched_delta_vth_changes_delay(self):
        dv = np.array([-0.08, 0.0, 0.08])
        result = simulate_transient(
            self.inverter(),
            sources={"vdd": 1.2, "in": step_waveform(1e-10, 0.0, 1.2)},
            capacitances={"out": 5e-15},
            t_stop=1e-9,
            dt=2e-12,
            element_params={"mn": {"delta_vth": dv}},
            initial={"out": 1.2},
        )
        delays = result.crossing_time("out", 0.6, rising=False)
        assert delays.shape == (3,)
        # Higher NMOS vth -> weaker pull-down -> slower fall.
        assert delays[0] < delays[1] < delays[2]


class TestWriteTimeMetric:
    def test_nominal_and_degradation(self, cell):
        from repro.sram.dynamic import WriteTimeMetric

        metric = WriteTimeMetric(cell)
        x = np.zeros((3, 6))
        x[1, 2] = 4.0    # weaker access slows the write
        x[2, 2] = 12.0   # extreme corner: write failure
        x[2, 4] = -12.0
        times = metric(x)
        assert 5e-12 < times[0] < 1e-10
        assert times[1] > times[0]
        assert times[2] == pytest.approx(metric.t_window)

    def test_invalid_capacitance_raises(self, cell):
        from repro.sram.dynamic import WriteTimeMetric

        with pytest.raises(ValueError):
            WriteTimeMetric(cell, node_capacitance=0.0)
