"""Tests for the complete two-stage flow, Algorithm 5 (repro.gibbs.two_stage).

These are the estimator-correctness tests: on synthetic problems with exact
answers, both G-C and G-S must recover the truth within their reported
confidence intervals (with margin for MC fluctuation).
"""

import numpy as np
import pytest

from repro.gibbs.two_stage import gibbs_importance_sampling
from repro.mc.counter import CountedMetric
from repro.mc.indicator import FailureSpec
from repro.stats.mixture import GaussianMixture
from repro.stats.mvnormal import MultivariateNormal
from repro.synthetic import AnnularArcMetric, LinearMetric, QuadrantMetric

SPEC = FailureSpec(0.0, fail_below=True)


class TestEstimates:
    @pytest.mark.parametrize("system", ["cartesian", "spherical"])
    def test_halfspace_4sigma(self, system):
        metric = LinearMetric(np.array([1.0, 0.5, -0.3, 0.2]), 4.0)
        result = gibbs_importance_sampling(
            metric, SPEC, coordinate_system=system,
            n_gibbs=250, n_second_stage=4000, rng=11,
        )
        exact = metric.exact_failure_probability
        assert result.failure_probability == pytest.approx(exact, rel=0.25)

    @pytest.mark.parametrize("system", ["cartesian", "spherical"])
    def test_quadrant(self, system):
        metric = QuadrantMetric(np.array([2.5, 2.5]))
        result = gibbs_importance_sampling(
            metric, SPEC, coordinate_system=system,
            n_gibbs=250, n_second_stage=4000, rng=12,
        )
        exact = metric.exact_failure_probability
        assert result.failure_probability == pytest.approx(exact, rel=0.3)

    def test_spherical_wins_on_arc(self):
        """The Section V-B/Table II shape with a closed-form answer: G-S
        recovers the truth; G-C, trapped in one end of the arc,
        underestimates."""
        metric = AnnularArcMetric(radius=4.5, center_angle=0.6, half_width=0.9)
        exact = metric.exact_failure_probability
        gs = gibbs_importance_sampling(
            metric, SPEC, coordinate_system="spherical",
            n_gibbs=300, n_second_stage=6000, rng=5,
        )
        gc = gibbs_importance_sampling(
            metric, SPEC, coordinate_system="cartesian",
            n_gibbs=300, n_second_stage=6000, rng=5,
        )
        assert gs.failure_probability == pytest.approx(exact, rel=0.3)
        assert gc.failure_probability < 0.75 * exact


class TestFlowMechanics:
    def metric(self):
        return LinearMetric(np.array([1.0, 0.0]), 3.5)

    def test_method_labels(self):
        for system, label in (("cartesian", "G-C"), ("spherical", "G-S")):
            result = gibbs_importance_sampling(
                self.metric(), SPEC, coordinate_system=system,
                n_gibbs=60, n_second_stage=300, rng=0,
            )
            assert result.method == label

    def test_invalid_system_raises(self):
        with pytest.raises(ValueError, match="coordinate_system"):
            gibbs_importance_sampling(
                self.metric(), SPEC, coordinate_system="polar"
            )

    def test_invalid_fit_raises(self):
        with pytest.raises(ValueError, match="proposal_fit"):
            gibbs_importance_sampling(
                self.metric(), SPEC, n_gibbs=60, n_second_stage=300,
                proposal_fit="cauchy", rng=0,
            )

    def test_simulation_accounting_consistent(self):
        counted = CountedMetric(self.metric(), 2)
        result = gibbs_importance_sampling(
            counted, SPEC, n_gibbs=80, n_second_stage=400, rng=1,
        )
        assert result.n_first_stage + result.n_second_stage == counted.count
        assert result.n_second_stage == 400

    def test_extras_carry_chain_and_start(self):
        result = gibbs_importance_sampling(
            self.metric(), SPEC, n_gibbs=60, n_second_stage=300, rng=2,
        )
        assert result.extras["chain"].n_samples == 60
        assert result.extras["starting_point"].norm > 0
        assert isinstance(result.extras["proposal"], MultivariateNormal)

    def test_reused_starting_point_not_recharged(self):
        from repro.gibbs.starting_point import find_starting_point

        counted = CountedMetric(self.metric(), 2)
        start = find_starting_point(counted, SPEC, rng=3)
        before = counted.count
        result = gibbs_importance_sampling(
            counted, SPEC, n_gibbs=50, n_second_stage=200, rng=3, start=start,
        )
        # Only chain + second stage counted in the result.
        assert result.n_first_stage == counted.count - before - 200

    def test_mixture_proposal_fit(self):
        result = gibbs_importance_sampling(
            self.metric(), SPEC, n_gibbs=150, n_second_stage=2000,
            proposal_fit="mixture", mixture_components=2, rng=5,
        )
        assert isinstance(result.extras["proposal"], GaussianMixture)
        exact = self.metric().exact_failure_probability
        assert result.failure_probability == pytest.approx(exact, rel=0.4)

    def test_qmc_second_stage(self):
        metric = self.metric()
        result = gibbs_importance_sampling(
            metric, SPEC, n_gibbs=150, n_second_stage=2048,
            qmc_second_stage=True, rng=7,
        )
        from repro.stats.qmc import QMCNormal

        assert isinstance(result.extras["proposal"], QMCNormal)
        assert result.failure_probability == pytest.approx(
            metric.exact_failure_probability, rel=0.3
        )

    def test_qmc_second_stage_sharded_matches_serial(self):
        """The full flow with qmc_second_stage=True fans out correctly:
        shards draw disjoint Sobol slices, so the parallel run reproduces
        the serial run bit-exactly instead of replaying point 0."""
        serial = gibbs_importance_sampling(
            self.metric(), SPEC, n_gibbs=100, n_second_stage=2048,
            qmc_second_stage=True, rng=9,
        )
        sharded = gibbs_importance_sampling(
            self.metric(), SPEC, n_gibbs=100, n_second_stage=2048,
            qmc_second_stage=True, rng=9, n_workers=2, backend="thread",
        )
        assert sharded.failure_probability == serial.failure_probability
        assert sharded.relative_error == serial.relative_error

    def test_qmc_incompatible_with_mixture(self):
        with pytest.raises(ValueError, match="qmc_second_stage"):
            gibbs_importance_sampling(
                self.metric(), SPEC, n_gibbs=60, n_second_stage=300,
                proposal_fit="mixture", qmc_second_stage=True, rng=8,
            )

    def test_store_samples(self):
        result = gibbs_importance_sampling(
            self.metric(), SPEC, n_gibbs=50, n_second_stage=300,
            rng=6, store_samples=True,
        )
        assert result.extras["samples"].shape == (300, 2)
