"""Tests for the MC and IS estimators (repro.mc.montecarlo / importance)."""

import numpy as np
import pytest

from repro.mc.counter import CountedMetric
from repro.mc.importance import importance_sampling_estimate, importance_weights
from repro.mc.indicator import FailureSpec
from repro.mc.montecarlo import brute_force_monte_carlo
from repro.stats.mvnormal import MultivariateNormal
from repro.synthetic import LinearMetric, QuadrantMetric


class TestBruteForce:
    def test_quarter_plane_estimate(self, rng):
        prob = QuadrantMetric(np.zeros(2)).problem()
        result = brute_force_monte_carlo(prob.metric, prob.spec, 100_000, rng=rng)
        assert result.failure_probability == pytest.approx(0.25, abs=0.01)
        assert result.method == "MC"

    def test_counts_simulations(self, rng):
        metric = CountedMetric(QuadrantMetric(np.zeros(2)), 2)
        brute_force_monte_carlo(metric, FailureSpec(0.0), 5000, rng=rng)
        assert metric.count == 5000

    def test_trace_counts_increase(self, rng):
        prob = QuadrantMetric(np.zeros(2)).problem()
        result = brute_force_monte_carlo(prob.metric, prob.spec, 20_000, rng=rng)
        assert np.all(np.diff(result.trace.n_samples) > 0)
        assert result.trace.n_samples[-1] <= 20_000

    def test_trace_converges_toward_truth(self, rng):
        prob = QuadrantMetric(np.zeros(2)).problem()
        result = brute_force_monte_carlo(prob.metric, prob.spec, 50_000, rng=rng)
        late = result.trace.estimate[-5:]
        np.testing.assert_allclose(late, 0.25, atol=0.02)

    def test_zero_failures_inf_error(self, rng):
        metric = LinearMetric(np.array([1.0]), 30.0)  # essentially impossible
        result = brute_force_monte_carlo(metric, FailureSpec(0.0), 1000, rng=rng)
        assert result.failure_probability == 0.0
        assert np.isinf(result.relative_error)

    def test_invalid_n_raises(self, rng):
        with pytest.raises(ValueError):
            brute_force_monte_carlo(LinearMetric(np.ones(1), 1.0), FailureSpec(0.0), 0)

    def test_chunking_invariance(self):
        prob = QuadrantMetric(np.zeros(2)).problem()
        a = brute_force_monte_carlo(
            prob.metric, prob.spec, 10_000, rng=3, chunk_size=128
        )
        b = brute_force_monte_carlo(
            prob.metric, prob.spec, 10_000, rng=3, chunk_size=10_000
        )
        assert a.failure_probability == b.failure_probability


class TestImportanceWeights:
    def test_zero_for_passing(self, rng):
        x = rng.standard_normal((10, 2))
        fail = np.zeros(10, dtype=bool)
        w = importance_weights(x, fail, MultivariateNormal.standard(2),
                               MultivariateNormal.standard(2))
        np.testing.assert_array_equal(w, np.zeros(10))

    def test_identity_proposal_unit_weights(self, rng):
        x = rng.standard_normal((10, 2))
        fail = np.ones(10, dtype=bool)
        nominal = MultivariateNormal.standard(2)
        w = importance_weights(x, fail, nominal, nominal)
        np.testing.assert_allclose(w, np.ones(10))

    def test_shifted_proposal_ratio(self):
        nominal = MultivariateNormal.standard(1)
        proposal = MultivariateNormal(np.array([2.0]), np.eye(1))
        x = np.array([[2.0]])
        w = importance_weights(x, np.array([True]), proposal, nominal)
        expected = nominal.pdf(x)[0] / proposal.pdf(x)[0]
        assert w[0] == pytest.approx(expected)


class TestImportanceSamplingEstimate:
    def test_unbiased_on_halfspace(self, rng):
        """Mean-shifted proposal on a 4-sigma halfspace: the estimator must
        recover the exact answer."""
        metric = LinearMetric(np.array([1.0, 0.0]), 4.0)
        proposal = MultivariateNormal(np.array([4.0, 0.0]), np.eye(2))
        result = importance_sampling_estimate(
            CountedMetric(metric, 2), FailureSpec(0.0), proposal, 20_000, rng=rng
        )
        assert result.failure_probability == pytest.approx(
            metric.exact_failure_probability, rel=0.05
        )

    def test_accounting(self, rng):
        metric = CountedMetric(LinearMetric(np.array([1.0, 0.0]), 3.0), 2)
        result = importance_sampling_estimate(
            metric, FailureSpec(0.0),
            MultivariateNormal(np.array([3.0, 0.0]), np.eye(2)),
            500, rng=rng, n_first_stage=123, method="demo",
        )
        assert result.method == "demo"
        assert result.n_first_stage == 123
        assert result.n_second_stage == 500
        assert result.n_total == 623
        assert metric.count == 500

    def test_store_samples(self, rng):
        metric = LinearMetric(np.array([1.0, 0.0]), 3.0)
        result = importance_sampling_estimate(
            CountedMetric(metric, 2), FailureSpec(0.0),
            MultivariateNormal(np.array([3.0, 0.0]), np.eye(2)),
            300, rng=rng, store_samples=True,
        )
        assert result.extras["samples"].shape == (300, 2)
        assert result.extras["failed"].shape == (300,)
        assert result.extras["n_failures"] == int(result.extras["failed"].sum())

    def test_trace_attached(self, rng):
        metric = LinearMetric(np.array([1.0]), 2.0)
        result = importance_sampling_estimate(
            CountedMetric(metric, 1), FailureSpec(0.0),
            MultivariateNormal(np.array([2.0]), np.eye(1)),
            400, rng=rng,
        )
        assert result.trace is not None
        assert result.trace.n_samples[-1] <= 400

    def test_invalid_n_raises(self, rng):
        with pytest.raises(ValueError):
            importance_sampling_estimate(
                CountedMetric(LinearMetric(np.ones(1), 1.0), 1),
                FailureSpec(0.0), MultivariateNormal.standard(1), 1, rng=rng,
            )

    def test_perfect_proposal_near_zero_error(self, rng):
        """Sampling close to g_opt: truncated-like proposal concentrated in
        the failure region gives tiny relative error (the Section II
        argument for why the optimal PDF matters)."""
        metric = LinearMetric(np.array([1.0]), 3.0)
        good = MultivariateNormal(np.array([3.6]), 0.3 * np.eye(1))
        bad = MultivariateNormal(np.array([0.0]), np.eye(1))
        r_good = importance_sampling_estimate(
            CountedMetric(metric, 1), FailureSpec(0.0), good, 2000, rng=rng
        )
        r_bad = importance_sampling_estimate(
            CountedMetric(metric, 1), FailureSpec(0.0), bad, 2000, rng=rng
        )
        assert r_good.relative_error < r_bad.relative_error


class TestTinyRunTrace:
    """Trace checkpoints must stay within [1, n_samples] even when the run
    is smaller than the default first checkpoint (regression: geomspace
    used to start at 10 and tiny runs produced an empty/invalid trace)."""

    def test_trace_recorded_for_tiny_runs(self, rng):
        metric = QuadrantMetric(np.zeros(2))
        for n in (1, 2, 5, 9):
            result = brute_force_monte_carlo(
                metric, FailureSpec(0.0), n_samples=n, rng=rng
            )
            trace = result.trace
            assert trace.n_samples.size >= 1
            assert trace.n_samples.min() >= 1
            assert trace.n_samples.max() == n
            assert np.all(np.diff(trace.n_samples) > 0)

    def test_final_trace_point_matches_estimate(self, rng):
        metric = QuadrantMetric(np.zeros(2))
        result = brute_force_monte_carlo(metric, FailureSpec(0.0), n_samples=7, rng=rng)
        assert result.trace.estimate[-1] == result.failure_probability
