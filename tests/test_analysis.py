"""Tests for the experiment harness (repro.analysis)."""

import numpy as np
import pytest

from repro.analysis.experiments import (
    METHODS,
    compare_methods,
    run_method,
    second_stage_scatter,
    sims_to_target_error,
)
from repro.analysis.region import ascii_region, map_failure_region, uniform_failure_samples
from repro.analysis.tables import format_series, format_table
from repro.synthetic import LinearMetric, QuadrantMetric


@pytest.fixture(scope="module")
def problem():
    return LinearMetric(np.array([1.0, 0.4]), 3.5).problem("halfspace")


class TestRunMethod:
    @pytest.mark.parametrize("name", METHODS)
    def test_dispatch(self, problem, name):
        result = run_method(
            name, problem, rng=0, n_second_stage=600, n_gibbs=60,
            doe_budget=60, n_exploration=800,
        )
        assert result.method == name
        assert result.n_second_stage == 600

    def test_mc_dispatch(self, problem):
        result = run_method("MC", problem, rng=0, n_second_stage=2000)
        assert result.method == "MC"

    def test_unknown_method_raises(self, problem):
        with pytest.raises(ValueError, match="unknown method"):
            run_method("XYZ", problem)

    def test_estimates_consistent_across_methods(self, problem):
        exact = problem.exact_failure_probability
        for name in METHODS:
            result = run_method(
                name, problem, rng=1, n_second_stage=4000, n_gibbs=200,
                doe_budget=100, n_exploration=3000,
            )
            assert result.failure_probability == pytest.approx(exact, rel=0.5), name


class TestCompareMethods:
    def test_runs_all(self, problem):
        results = compare_methods(
            problem, methods=("MNIS", "G-C"), seed=3,
            n_second_stage=500, n_gibbs=50, doe_budget=60,
        )
        assert set(results) == {"MNIS", "G-C"}

    def test_streams_independent_of_subset(self, problem):
        """Removing one method must not change another's result."""
        both = compare_methods(
            problem, methods=("MNIS", "G-C"), seed=3,
            n_second_stage=400, n_gibbs=40, doe_budget=60,
        )
        alone = compare_methods(
            problem, methods=("MNIS",), seed=3,
            n_second_stage=400, n_gibbs=40, doe_budget=60,
        )
        assert (
            both["MNIS"].failure_probability
            == alone["MNIS"].failure_probability
        )


class TestSimsToTarget:
    def test_rows(self, problem):
        results = compare_methods(
            problem, methods=("MNIS",), seed=5,
            n_second_stage=6000, doe_budget=80,
        )
        rows = sims_to_target_error(results, target=0.3)
        row = rows["MNIS"]
        assert row["first_stage"] == results["MNIS"].n_first_stage
        assert row["second_stage"] is not None
        assert row["total"] == row["first_stage"] + row["second_stage"]

    def test_unreached_target(self, problem):
        results = compare_methods(
            problem, methods=("MNIS",), seed=5,
            n_second_stage=300, doe_budget=80,
        )
        rows = sims_to_target_error(results, target=0.0001)
        assert rows["MNIS"]["second_stage"] is None
        assert rows["MNIS"]["total"] is None


class TestScatter:
    def test_requires_stored_samples(self, problem):
        result = run_method("MNIS", problem, rng=0, n_second_stage=300,
                            doe_budget=60)
        with pytest.raises(ValueError, match="store_samples"):
            second_stage_scatter(result, (0, 1))

    def test_pass_fail_split(self, problem):
        result = run_method(
            "MNIS", problem, rng=0, n_second_stage=500, doe_budget=60,
            store_samples=True,
        )
        scatter = second_stage_scatter(result, (0, 1))
        n = len(scatter["pass"]) + len(scatter["fail"])
        assert n == 500
        assert scatter["fail"].shape[1] == 2


class TestRegion:
    def quadrant(self):
        return QuadrantMetric(np.array([1.0, 1.0])).problem()

    def test_map_matches_analytic_region(self):
        axis_x, axis_y, fail = map_failure_region(
            self.quadrant(), extent=4.0, n_grid=41
        )
        xi = np.searchsorted(axis_x, 2.0)
        yi = np.searchsorted(axis_y, 2.0)
        assert fail[xi, yi]                 # (2, 2) fails
        assert not fail[0, 0]               # (-4, -4) passes
        assert fail.mean() == pytest.approx((3 / 8) ** 2, abs=0.02)

    def test_uniform_failure_samples_all_fail(self, rng):
        prob = self.quadrant()
        pts = uniform_failure_samples(prob, extent=4.0, n_samples=2000, rng=rng)
        full = np.zeros((pts.shape[0], 2))
        full[:, :] = pts
        assert np.all(prob.indicator(full))

    def test_ascii_render(self):
        axis_x, axis_y, fail = map_failure_region(
            self.quadrant(), extent=4.0, n_grid=41
        )
        art = ascii_region(axis_x, axis_y, fail, width=31, height=15)
        lines = art.splitlines()
        assert len(lines) == 15
        assert "#" in art and "." in art
        # Failure is the upper-right quadrant: first line mostly '#' at the
        # right, last line none.
        assert "#" in lines[0]
        assert "#" not in lines[-1]


class TestTables:
    def test_format_table_alignment(self):
        out = format_table(
            ["method", "P_f"], [["MIS", 1.5e-5], ["G-S", None]]
        )
        lines = out.splitlines()
        assert lines[0].startswith("method")
        assert "-" in lines[1]
        assert "1.5e-05" in out
        assert "-" in lines[3]  # None rendered as dash

    def test_format_series(self):
        out = format_series(
            np.array([10, 20]),
            {"a": np.array([0.1, 0.2]), "b": np.array([1.0, 2.0])},
        )
        assert "a" in out and "b" in out and "10" in out

    def test_numpy_scalars_rendered(self):
        out = format_table(["x"], [[np.float64(0.125)], [np.int64(7)]])
        assert "0.125" in out and "7" in out

    def test_inf_rendered(self):
        out = format_table(["x"], [[float("inf")]])
        assert "inf" in out
