"""Tests for inverse-transform truncated sampling (repro.stats.truncated)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.stats.distributions import ChiDistribution, StandardNormal
from repro.stats.truncated import TruncatedDistribution


class TestConstruction:
    def test_inverted_interval_raises(self):
        with pytest.raises(ValueError, match="empty or inverted"):
            TruncatedDistribution(StandardNormal(), 2.0, 1.0)

    def test_zero_width_raises(self):
        with pytest.raises(ValueError):
            TruncatedDistribution(StandardNormal(), 1.0, 1.0)

    def test_interval_clipped_to_support(self):
        trunc = TruncatedDistribution(ChiDistribution(4), -3.0, 2.0)
        assert trunc.lower == 0.0

    def test_zero_mass_interval_raises(self):
        # Both bounds far beyond double-precision Normal mass.
        with pytest.raises(ValueError, match="zero probability"):
            TruncatedDistribution(StandardNormal(), 40.0, 41.0)

    def test_mass_computed(self):
        trunc = TruncatedDistribution(StandardNormal(), -1.0, 1.0)
        assert trunc.mass == pytest.approx(stats.norm.cdf(1) - stats.norm.cdf(-1))


class TestSampling:
    @given(
        st.floats(-6.0, 5.0),
        st.floats(0.05, 4.0),
    )
    @settings(max_examples=30)
    def test_samples_inside_interval(self, lower, width):
        trunc = TruncatedDistribution(StandardNormal(), lower, lower + width)
        draws = trunc.sample(np.random.default_rng(0), 500)
        assert np.all(draws >= trunc.lower)
        assert np.all(draws <= trunc.upper)

    def test_distribution_matches_truncnorm(self, rng):
        lower, upper = 1.0, 3.0
        trunc = TruncatedDistribution(StandardNormal(), lower, upper)
        draws = trunc.sample(rng, 20_000)
        ks = stats.kstest(draws, stats.truncnorm(lower, upper).cdf)
        assert ks.pvalue > 1e-3

    def test_deep_tail_sampling_feasible(self, rng):
        """This is the regime the paper lives in: slices at 4-6 sigma."""
        trunc = TruncatedDistribution(StandardNormal(), 5.0, 8.0)
        draws = trunc.sample(rng, 5000)
        assert np.all((draws >= 5.0) & (draws <= 8.0))
        # Mass concentrates hard against the lower edge.
        assert np.mean(draws < 5.5) > 0.9

    def test_chi_truncated_distribution(self, rng):
        dist = ChiDistribution(6)
        trunc = TruncatedDistribution(dist, 3.0, 5.0)
        draws = trunc.sample(rng, 20_000)
        scipy_trunc_cdf = lambda r: (
            (stats.chi(6).cdf(r) - stats.chi(6).cdf(3.0))
            / (stats.chi(6).cdf(5.0) - stats.chi(6).cdf(3.0))
        )
        ks = stats.kstest(draws, scipy_trunc_cdf)
        assert ks.pvalue > 1e-3

    def test_scalar_sample(self, rng):
        trunc = TruncatedDistribution(StandardNormal(), 0.0, 1.0)
        value = trunc.sample(rng)
        assert np.ndim(value) == 0

    def test_deterministic_with_seed(self):
        trunc = TruncatedDistribution(StandardNormal(), -1.0, 2.0)
        a = trunc.sample(np.random.default_rng(3), 10)
        b = trunc.sample(np.random.default_rng(3), 10)
        np.testing.assert_array_equal(a, b)


class TestDensities:
    def test_pdf_zero_outside(self):
        trunc = TruncatedDistribution(StandardNormal(), -1.0, 1.0)
        np.testing.assert_array_equal(trunc.pdf(np.array([-2.0, 2.0])), [0.0, 0.0])

    def test_pdf_renormalised(self):
        trunc = TruncatedDistribution(StandardNormal(), -1.0, 1.0)
        x = np.linspace(-1, 1, 2001)
        integral = np.trapezoid(trunc.pdf(x), x)
        assert integral == pytest.approx(1.0, abs=1e-5)

    def test_cdf_endpoints(self):
        trunc = TruncatedDistribution(StandardNormal(), -0.5, 2.0)
        assert trunc.cdf(-0.5) == pytest.approx(0.0, abs=1e-12)
        assert trunc.cdf(2.0) == pytest.approx(1.0, abs=1e-12)

    def test_repr_mentions_interval(self):
        trunc = TruncatedDistribution(StandardNormal(), -1.0, 1.0)
        assert "StandardNormal" in repr(trunc)
