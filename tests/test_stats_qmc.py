"""Tests for the quasi-Monte-Carlo proposal wrapper (repro.stats.qmc)."""

import numpy as np
import pytest

from repro.mc.counter import CountedMetric
from repro.mc.importance import importance_sampling_estimate
from repro.mc.indicator import FailureSpec
from repro.stats.mvnormal import MultivariateNormal
from repro.stats.qmc import QMCNormal
from repro.synthetic import LinearMetric


class TestQMCNormal:
    def test_sample_shape_and_moments(self):
        base = MultivariateNormal(np.array([1.0, -2.0]), np.diag([4.0, 0.25]))
        prop = QMCNormal(base, seed=0)
        draws = prop.sample(4096)
        assert draws.shape == (4096, 2)
        np.testing.assert_allclose(draws.mean(axis=0), base.mean, atol=0.05)
        np.testing.assert_allclose(
            draws.var(axis=0), np.diag(base.cov), rtol=0.05
        )

    def test_logpdf_delegates(self):
        base = MultivariateNormal.standard(3)
        prop = QMCNormal(base, seed=1)
        x = np.random.default_rng(0).standard_normal((7, 3))
        np.testing.assert_array_equal(prop.logpdf(x), base.logpdf(x))

    def test_successive_calls_continue_sequence(self):
        prop = QMCNormal(MultivariateNormal.standard(2), seed=2)
        a = prop.sample(64)
        b = prop.sample(64)
        assert not np.allclose(a, b)

    def test_invalid_n_raises(self):
        prop = QMCNormal(MultivariateNormal.standard(2), seed=3)
        with pytest.raises(ValueError):
            prop.sample(0)

    def test_marked_stateful(self):
        assert QMCNormal(MultivariateNormal.standard(2), seed=0).stateful_sample

    def test_shard_slices_concatenate_to_serial_draw(self):
        """sample_shard(0, a) ++ sample_shard(a, n-a) == sample(n), bit-exact."""
        base = MultivariateNormal(np.array([1.0, -2.0]), np.diag([4.0, 0.25]))
        full = QMCNormal(base, seed=11).sample(256)
        sharded = QMCNormal(base, seed=11)
        pieces = np.vstack([
            sharded.sample_shard(0, 100),
            sharded.sample_shard(100, 100),
            sharded.sample_shard(200, 56),
        ])
        np.testing.assert_array_equal(pieces, full)

    def test_sample_shard_does_not_advance_parent(self):
        prop = QMCNormal(MultivariateNormal.standard(2), seed=12)
        reference = QMCNormal(MultivariateNormal.standard(2), seed=12).sample(64)
        prop.sample_shard(0, 32)
        prop.sample_shard(32, 32)
        np.testing.assert_array_equal(prop.sample(64), reference)

    def test_advance_skips_points(self):
        full = QMCNormal(MultivariateNormal.standard(2), seed=13).sample(128)
        prop = QMCNormal(MultivariateNormal.standard(2), seed=13)
        prop.advance(48)
        np.testing.assert_array_equal(prop.sample(80), full[48:])

    def test_sample_shard_preserves_unseeded_scramble(self):
        prop = QMCNormal(MultivariateNormal.standard(2))  # seed=None
        np.testing.assert_array_equal(
            prop.sample_shard(0, 16), prop.sample_shard(0, 16)
        )

    def test_sample_shard_invalid_args_raise(self):
        prop = QMCNormal(MultivariateNormal.standard(2), seed=14)
        with pytest.raises(ValueError):
            prop.sample_shard(0, 0)
        with pytest.raises(ValueError):
            prop.sample_shard(-1, 8)
        with pytest.raises(ValueError):
            prop.advance(-1)

    def test_drop_in_for_importance_sampling(self):
        metric = LinearMetric(np.array([1.0, 0.0]), 3.5)
        base = MultivariateNormal(np.array([3.8, 0.0]), np.eye(2))
        result = importance_sampling_estimate(
            CountedMetric(metric, 2), FailureSpec(0.0),
            QMCNormal(base, seed=4), 4096, rng=0,
        )
        assert result.failure_probability == pytest.approx(
            metric.exact_failure_probability, rel=0.1
        )

    def test_variance_reduction_vs_plain_sampling(self):
        """Across independent scrambles/streams, the QMC second stage's
        estimates must spread less than plain sampling's at equal N."""
        metric = LinearMetric(np.array([1.0, 0.0]), 3.5)
        spec = FailureSpec(0.0)
        base = MultivariateNormal(np.array([3.8, 0.0]), np.eye(2))
        qmc_estimates, mc_estimates = [], []
        for k in range(12):
            q = importance_sampling_estimate(
                CountedMetric(metric, 2), spec, QMCNormal(base, seed=k),
                1024, rng=k,
            )
            m = importance_sampling_estimate(
                CountedMetric(metric, 2), spec, base, 1024, rng=k,
            )
            qmc_estimates.append(q.failure_probability)
            mc_estimates.append(m.failure_probability)
        assert np.std(qmc_estimates) < np.std(mc_estimates)
