"""Tests for the SPICE-flavoured netlist parser (repro.circuit.parser)."""

import numpy as np
import pytest

from repro.circuit import solve_dc
from repro.circuit.parser import parse_netlist, parse_value


class TestParseValue:
    @pytest.mark.parametrize(
        "token,expected",
        [
            ("100", 100.0),
            ("1.5k", 1500.0),
            ("10u", 1e-5),
            ("2.5n", 2.5e-9),
            ("3p", 3e-12),
            ("1f", 1e-15),
            ("4meg", 4e6),
            ("1MEG", 1e6),
            ("-2m", -0.002),
            ("1e-3", 1e-3),
            ("1.2e3k", 1.2e6),
        ],
    )
    def test_suffixes(self, token, expected):
        assert parse_value(token) == pytest.approx(expected)

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            parse_value("abc")

    def test_unknown_suffix_raises(self):
        with pytest.raises(ValueError):
            parse_value("10x")


class TestParseNetlist:
    INVERTER = """
    * a CMOS inverter
    M1 out in 0   0   nmos w=0.3 l=0.1
    M2 out in vdd vdd pmos w=0.15 l=0.1
    """

    def test_inverter_parses_and_solves(self):
        circuit = parse_netlist(self.INVERTER)
        assert len(circuit.elements) == 2
        sol = solve_dc(circuit, {"vdd": 1.2, "in": 0.0})
        assert float(sol.voltage("out")) == pytest.approx(1.2, abs=0.01)

    def test_comments_and_blank_lines_ignored(self):
        text = "* c1\n\n# c2\nR1 a 0 1k\n"
        circuit = parse_netlist(text)
        assert len(circuit.elements) == 1

    def test_resistor_divider(self):
        circuit = parse_netlist("R1 vdd mid 1k\nR2 mid 0 3k\n")
        sol = solve_dc(circuit, {"vdd": 4.0})
        assert float(sol.voltage("mid")) == pytest.approx(3.0, abs=1e-6)

    def test_current_source(self):
        circuit = parse_netlist("I1 n 0 1m\nR1 n 0 1k\n")
        sol = solve_dc(circuit, {}, voltage_margin=2.0)
        assert float(sol.voltage("n")) == pytest.approx(-1.0, abs=1e-6)

    def test_default_geometry(self):
        circuit = parse_netlist("M1 d g 0 0 nmos\n")
        assert circuit.element("M1").device.params.beta > 0

    def test_error_carries_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_netlist("R1 a 0 1k\nM1 d g 0 nmos\n")

    def test_unknown_model_raises(self):
        with pytest.raises(ValueError, match="unknown MOSFET model"):
            parse_netlist("M1 d g 0 0 finfet\n")

    def test_unknown_mosfet_param_raises(self):
        with pytest.raises(ValueError, match="unknown MOSFET parameters"):
            parse_netlist("M1 d g 0 0 nmos w=0.2 l=0.1 vth=0.4\n")

    def test_voltage_source_rejected_with_guidance(self):
        with pytest.raises(ValueError, match="solve time"):
            parse_netlist("V1 vdd 0 1.2\n")

    def test_unsupported_card_raises(self):
        with pytest.raises(ValueError, match="unsupported element"):
            parse_netlist("C1 a 0 1p\n")

    def test_empty_netlist_raises(self):
        with pytest.raises(ValueError, match="no elements"):
            parse_netlist("* nothing here\n")

    def test_mismatch_via_element_params(self):
        circuit = parse_netlist(self.INVERTER)
        dv = np.array([-0.1, 0.1])
        sol = solve_dc(
            circuit, {"vdd": 1.2, "in": 0.6},
            element_params={"M1": {"delta_vth": dv}},
        )
        vout = sol.voltage("out")
        assert vout[0] < vout[1]
