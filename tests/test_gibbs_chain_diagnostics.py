"""Tests for chain-level behaviours shared by both Gibbs samplers."""

import numpy as np
import pytest

from repro.gibbs.cartesian import CartesianGibbs, GibbsChain
from repro.gibbs.spherical import SphericalGibbs
from repro.gibbs.coordinates import initial_spherical_coordinates
from repro.mc.counter import CountedMetric
from repro.mc.indicator import FailureSpec
from repro.synthetic import LinearMetric, QuadrantMetric

SPEC = FailureSpec(0.0, fail_below=True)


class TestGibbsChainContainer:
    def test_simulations_per_sample(self):
        chain = GibbsChain(samples=np.zeros((10, 2)), n_simulations=120)
        assert chain.simulations_per_sample == 12.0

    def test_empty_guard(self):
        chain = GibbsChain(samples=np.zeros((0, 2)), n_simulations=5)
        assert chain.simulations_per_sample == 5.0  # no division by zero


class TestCounterIntegration:
    def test_cartesian_counts_match_counter(self, rng):
        counted = CountedMetric(QuadrantMetric(np.zeros(2)), 2)
        sampler = CartesianGibbs(counted, SPEC, bisect_iters=6)
        chain = sampler.run(np.array([1.0, 1.0]), 30, rng)
        assert counted.count == chain.n_simulations

    def test_spherical_counts_match_counter(self, rng):
        counted = CountedMetric(QuadrantMetric(np.zeros(2)), 2)
        sampler = SphericalGibbs(counted, SPEC, bisect_iters=5)
        r0, a0 = initial_spherical_coordinates(np.array([1.0, 1.0]))
        chain = sampler.run(r0, a0, 30, rng)
        assert counted.count == chain.n_simulations


class TestSimsPerSampleBands:
    """The paper quotes 5-10 simulations per Gibbs sample; our defaults sit
    in (Cartesian) or moderately above (spherical, deeper orientation
    search) that band — pinned here so cost regressions are caught."""

    def test_cartesian_band(self, rng):
        metric = LinearMetric(np.array([1.0, 0.0]), 3.0)
        chain = CartesianGibbs(metric, SPEC).run(
            np.array([3.5, 0.0]), 60, rng
        )
        assert 4.0 <= chain.simulations_per_sample <= 13.0

    def test_spherical_band(self, rng):
        metric = LinearMetric(np.array([1.0, 0.0]), 3.0)
        r0, a0 = initial_spherical_coordinates(np.array([3.5, 0.0]))
        chain = SphericalGibbs(metric, SPEC).run(r0, a0, 60, rng)
        assert 6.0 <= chain.simulations_per_sample <= 20.0


class TestMixingAcrossRestarts:
    def test_two_seeds_agree_on_mean(self, rng):
        """Two independent chains must agree on the sampled distribution's
        location (a crude but effective mixing check)."""
        metric = LinearMetric(np.array([1.0, 0.0]), 3.0)
        sampler = CartesianGibbs(metric, SPEC, bisect_iters=10)
        a = sampler.run(np.array([3.3, 0.0]), 800, np.random.default_rng(1))
        b = sampler.run(np.array([3.3, 0.0]), 800, np.random.default_rng(2))
        assert a.samples[:, 0].mean() == pytest.approx(
            b.samples[:, 0].mean(), abs=0.1
        )

    def test_interval_widths_positive_for_open_region(self, rng):
        metric = LinearMetric(np.array([1.0, 0.0]), 3.0)
        chain = CartesianGibbs(metric, SPEC).run(
            np.array([3.5, 0.0]), 40, rng
        )
        widths = np.array(chain.interval_widths)
        # The x1 slices reach the clamp (region unbounded outward), and
        # the x2 slices span the whole clamp box: all should be wide.
        assert np.all(widths[::2] > 0.5)
