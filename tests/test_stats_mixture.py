"""Tests for the Gaussian-mixture proposal (repro.stats.mixture)."""

import numpy as np
import pytest

from repro.stats.mixture import GaussianMixture
from repro.stats.mvnormal import MultivariateNormal


def bimodal_samples(rng, n=4000):
    a = rng.standard_normal((n // 2, 2)) * 0.5 + np.array([3.0, 0.0])
    b = rng.standard_normal((n // 2, 2)) * 0.5 + np.array([-3.0, 0.0])
    return np.vstack([a, b])


class TestConstruction:
    def test_weight_count_mismatch_raises(self):
        comp = [MultivariateNormal.standard(2)]
        with pytest.raises(ValueError, match="one weight"):
            GaussianMixture(np.array([0.5, 0.5]), comp)

    def test_weights_must_sum_to_one(self):
        comps = [MultivariateNormal.standard(2), MultivariateNormal.standard(2)]
        with pytest.raises(ValueError, match="sum to 1"):
            GaussianMixture(np.array([0.5, 0.2]), comps)

    def test_dimension_mismatch_raises(self):
        comps = [MultivariateNormal.standard(2), MultivariateNormal.standard(3)]
        with pytest.raises(ValueError, match="share one dimension"):
            GaussianMixture(np.array([0.5, 0.5]), comps)


class TestFit:
    def test_recovers_bimodal_means(self, rng):
        samples = bimodal_samples(rng)
        gm = GaussianMixture.fit(samples, n_components=2, rng=rng)
        means = sorted(c.mean[0] for c in gm.components)
        assert means[0] == pytest.approx(-3.0, abs=0.3)
        assert means[1] == pytest.approx(3.0, abs=0.3)

    def test_component_cap_for_small_samples(self, rng):
        samples = rng.standard_normal((12, 3))
        gm = GaussianMixture.fit(samples, n_components=5, rng=rng)
        assert len(gm.components) < 5

    def test_single_component_matches_normal_fit(self, rng):
        samples = rng.standard_normal((500, 2)) + np.array([1.0, -1.0])
        gm = GaussianMixture.fit(samples, n_components=1, rng=rng, ridge=0.0)
        direct = MultivariateNormal.fit(samples, ridge=0.0, min_variance=0.0)
        np.testing.assert_allclose(gm.components[0].mean, direct.mean, atol=1e-8)


class TestDensityAndSampling:
    def test_logpdf_matches_manual_mixture(self, rng):
        comps = [
            MultivariateNormal(np.array([2.0, 0.0]), np.eye(2)),
            MultivariateNormal(np.array([-2.0, 0.0]), 2 * np.eye(2)),
        ]
        gm = GaussianMixture(np.array([0.3, 0.7]), comps)
        x = rng.standard_normal((9, 2)) * 3
        manual = np.log(0.3 * comps[0].pdf(x) + 0.7 * comps[1].pdf(x))
        np.testing.assert_allclose(gm.logpdf(x), manual, rtol=1e-10)

    def test_pdf_integrates_to_one(self, rng):
        comps = [
            MultivariateNormal(np.array([1.0]), np.eye(1)),
            MultivariateNormal(np.array([-1.0]), 0.25 * np.eye(1)),
        ]
        gm = GaussianMixture(np.array([0.4, 0.6]), comps)
        x = np.linspace(-10, 10, 4001)[:, np.newaxis]
        integral = np.trapezoid(gm.pdf(x), x[:, 0])
        assert integral == pytest.approx(1.0, abs=1e-6)

    def test_sample_proportions(self, rng):
        comps = [
            MultivariateNormal(np.array([10.0, 0.0]), np.eye(2) * 0.01),
            MultivariateNormal(np.array([-10.0, 0.0]), np.eye(2) * 0.01),
        ]
        gm = GaussianMixture(np.array([0.25, 0.75]), comps)
        draws = gm.sample(20_000, rng)
        frac_right = np.mean(draws[:, 0] > 0)
        assert frac_right == pytest.approx(0.25, abs=0.02)

    def test_sample_shape(self, rng):
        gm = GaussianMixture.fit(rng.standard_normal((200, 3)), 2, rng=rng)
        assert gm.sample(17, rng).shape == (17, 3)
