"""Tests for global process corners (repro.sram.corners)."""

import numpy as np
import pytest

from repro.sram.corners import CORNERS, corner_cell, corner_technology
from repro.sram.metrics import ReadCurrentMetric


class TestCornerTechnology:
    def test_tt_is_nominal(self):
        tech = corner_technology("TT")
        from repro.devices.technology import default_technology

        assert tech.vth_n == default_technology().vth_n
        assert tech.vth_p == default_technology().vth_p

    def test_ss_raises_both_thresholds(self):
        tech = corner_technology("SS", sigma_global=0.04)
        assert tech.vth_n == pytest.approx(0.39)
        assert tech.vth_p == pytest.approx(0.39)

    def test_fs_is_skewed(self):
        tech = corner_technology("FS", sigma_global=0.04)
        assert tech.vth_n < tech.vth_p

    def test_case_insensitive(self):
        assert corner_technology("ff").vth_n < corner_technology("TT").vth_n

    def test_unknown_corner_raises(self):
        with pytest.raises(ValueError, match="unknown corner"):
            corner_technology("XY")

    def test_negative_sigma_raises(self):
        with pytest.raises(ValueError):
            corner_technology("TT", sigma_global=-0.01)

    def test_all_five_corners_defined(self):
        assert set(CORNERS) == {"TT", "FF", "SS", "FS", "SF"}


class TestCornerPhysics:
    def test_read_current_fastest_at_ff(self):
        """Faster (lower-Vth) devices drive more read current: FF > TT > SS."""
        x0 = np.zeros((1, 2))
        currents = {
            c: ReadCurrentMetric(corner_cell(c))(x0)[0] for c in ("FF", "TT", "SS")
        }
        assert currents["FF"] > currents["TT"] > currents["SS"]

    def test_write_slowest_at_sf(self):
        """SF (slow NMOS access, fast/strong PMOS pull-up) is the classic
        write-ability worst case — cleanest to see on the dynamic flip
        time, which is definition-free."""
        times = {
            c: float(corner_cell(c).write_flip_time())
            for c in ("TT", "SF", "FS")
        }
        assert times["SF"] > times["TT"] > times["FS"]

    def test_local_mismatch_sigmas_unchanged(self):
        from repro.sram import SixTransistorCell

        assert corner_cell("SS").sigma_vth == SixTransistorCell().sigma_vth
