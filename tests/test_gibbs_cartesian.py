"""Tests for the Cartesian Gibbs chain (repro.gibbs.cartesian)."""

import numpy as np
import pytest
from scipy import stats

from repro.gibbs.cartesian import CartesianGibbs
from repro.mc.indicator import FailureSpec
from repro.synthetic import LinearMetric, QuadrantMetric

SPEC = FailureSpec(0.0, fail_below=True)


class TestChainMechanics:
    def quadrant_sampler(self):
        return CartesianGibbs(QuadrantMetric(np.zeros(2)), SPEC, bisect_iters=8)

    def test_samples_shape(self, rng):
        chain = self.quadrant_sampler().run(np.array([1.0, 1.0]), 50, rng)
        assert chain.samples.shape == (50, 2)
        assert chain.n_samples == 50

    def test_all_samples_in_failure_region(self, rng):
        """The chain must never leave the (convex, single) failure region."""
        chain = self.quadrant_sampler().run(np.array([1.0, 1.0]), 200, rng)
        assert np.all(chain.samples >= -1e-9)

    def test_simulation_accounting(self, rng):
        chain = self.quadrant_sampler().run(np.array([1.0, 1.0]), 40, rng)
        # 1 start verification + per-sample searches (2 endpoint sims plus
        # up to 2 per bisection step).
        assert chain.n_simulations >= 1 + 40 * 2
        assert chain.n_simulations <= 1 + 40 * (2 + 2 * 8)
        assert chain.simulations_per_sample > 2

    def test_interval_widths_recorded(self, rng):
        chain = self.quadrant_sampler().run(np.array([1.0, 1.0]), 30, rng)
        assert len(chain.interval_widths) == 30

    def test_bad_start_raises(self, rng):
        with pytest.raises(ValueError, match="not in the failure region"):
            self.quadrant_sampler().run(np.array([-3.0, -3.0]), 10, rng)

    def test_verify_start_skippable(self, rng):
        sampler = self.quadrant_sampler()
        chain = sampler.run(np.array([1.0, 1.0]), 10, rng, verify_start=False)
        with_verify = sampler.run(np.array([1.0, 1.0]), 10, rng, verify_start=True)
        assert with_verify.n_simulations >= chain.n_simulations

    def test_wrong_dimension_start_raises(self, rng):
        with pytest.raises(ValueError, match="dimension"):
            self.quadrant_sampler().run(np.array([1.0, 1.0, 1.0]), 10, rng)

    def test_nonpositive_samples_raises(self, rng):
        with pytest.raises(ValueError):
            self.quadrant_sampler().run(np.array([1.0, 1.0]), 0, rng)

    def test_invalid_zeta_raises(self):
        with pytest.raises(ValueError, match="zeta"):
            CartesianGibbs(QuadrantMetric(np.zeros(2)), SPEC, zeta=-1.0)

    def test_deterministic_with_seed(self):
        sampler = self.quadrant_sampler()
        a = sampler.run(np.array([1.0, 1.0]), 20, np.random.default_rng(5))
        b = sampler.run(np.array([1.0, 1.0]), 20, np.random.default_rng(5))
        np.testing.assert_array_equal(a.samples, b.samples)


class TestStationaryDistribution:
    def test_halfspace_marginal_is_truncated_normal(self, rng):
        """On the region {x1 >= b}, g_opt factorises: x1 follows a Normal
        truncated to [b, inf) and x2 stays standard Normal.  The chain's
        samples must match both marginals."""
        b = 2.0
        metric = LinearMetric(np.array([1.0, 0.0]), b)
        sampler = CartesianGibbs(metric, SPEC, bisect_iters=14)
        chain = sampler.run(np.array([2.5, 0.0]), 4000, rng)
        x1 = chain.samples[:, 0]
        x2 = chain.samples[:, 1]
        ks1 = stats.kstest(x1, stats.truncnorm(b, 8.0).cdf)
        ks2 = stats.kstest(x2, stats.norm.cdf)
        # Gibbs samples are serially correlated; use a lenient threshold.
        assert ks1.pvalue > 1e-5
        assert ks2.pvalue > 1e-5

    def test_quadrant_corner_density(self, rng):
        """On Eq. (18)'s quarter plane, g_opt = truncated Normals on each
        axis: most mass hugs the corner."""
        sampler = CartesianGibbs(
            QuadrantMetric(np.zeros(2)), SPEC, bisect_iters=12
        )
        chain = sampler.run(np.array([0.5, 0.5]), 3000, rng)
        for k in range(2):
            ks = stats.kstest(chain.samples[:, k], stats.truncnorm(0.0, 8.0).cdf)
            assert ks.pvalue > 1e-5
