"""Regression tests for interrupted-exit teardown.

The contract: however a run ends — clean return, exception, SIGINT,
per-job timeout — every worker pool is torn down (queued work cancelled,
workers joined) and the CLI exits with the conventional SIGINT status
instead of a traceback.  These tests pin the three layers of that
contract: :class:`ParallelExecutor` context/close semantics, the yield
service's shutdown, and the CLI's exit code.
"""

import threading
import time

import pytest

from repro import cli
from repro.parallel import ParallelExecutor
from repro.service import JobRequest, YieldService


def _identity(x):
    return x


class TestExecutorTeardown:
    def test_clean_exit_closes_pool(self):
        executor = ParallelExecutor(n_workers=2, backend="thread")
        with executor:
            assert executor._pool is not None
        assert executor._pool is None

    def test_exception_exit_closes_pool(self):
        executor = ParallelExecutor(n_workers=2, backend="thread")
        with pytest.raises(RuntimeError, match="boom"):
            with executor:
                raise RuntimeError("boom")
        assert executor._pool is None

    def test_reentrant_context_keeps_pool_until_outermost_exit(self):
        executor = ParallelExecutor(n_workers=2, backend="thread")
        with executor:
            pool = executor._pool
            with executor:  # inner flow borrows the owner's pool
                assert executor._pool is pool
            assert executor._pool is pool, "inner exit must not tear down"
        assert executor._pool is None

    def test_close_forces_teardown_through_any_depth(self):
        executor = ParallelExecutor(n_workers=2, backend="thread")
        executor.__enter__()
        executor.__enter__()
        executor.close()
        assert executor._pool is None and executor._depth == 0

    def test_close_is_idempotent_and_reenterable(self):
        executor = ParallelExecutor(n_workers=2, backend="thread")
        executor.close()
        executor.close()
        with executor:
            assert executor.map(_identity, [1, 2, 3]) == [1, 2, 3]
        assert executor._pool is None

    def test_inline_executor_has_no_pool_to_leak(self):
        executor = ParallelExecutor(n_workers=1, backend="process")
        with executor:
            assert executor._pool is None


class TestServiceTeardown:
    def test_close_cancels_a_running_job(self, tmp_path):
        # A wide shard grid gives the cooperative abort many boundaries
        # to fire at; close() must not wait for the whole budget.
        svc = YieldService(cache_dir=tmp_path)
        job = svc.submit(JobRequest(
            problem="iread", method="G-S", seed=31,
            n_gibbs=30, doe_budget=50,
            n_second_stage=200_000, shard_size=64,
        ))
        time.sleep(0.3)  # let the job get going
        svc.close()
        # close() returned, so the job thread has finished — either the
        # cooperative abort fired (the expected path) or the job somehow
        # beat the clock; it must not be left running.
        assert job.state in ("cancelled", "done")
        if job.state == "cancelled":
            assert "cancelled" in job.error
        with pytest.raises(RuntimeError, match="closed"):
            svc.submit(JobRequest())

    def test_serve_forever_always_closes_the_service(
        self, tmp_path, monkeypatch
    ):
        # server.shutdown() from another thread makes serve_forever
        # return; its finally block must close the service either way.
        import repro.service.server as server_mod

        svc = YieldService(cache_dir=tmp_path)
        captured = {}
        real_make_server = server_mod.make_server

        def capturing_make_server(service, host, port):
            captured["server"] = real_make_server(service, host, port)
            return captured["server"]

        monkeypatch.setattr(server_mod, "make_server", capturing_make_server)
        ready = threading.Event()
        thread = threading.Thread(
            target=server_mod.serve_forever,
            args=(svc,),
            kwargs={"port": 0, "ready": ready},
            daemon=True,
        )
        thread.start()
        assert ready.wait(timeout=10)
        captured["server"].shutdown()
        thread.join(timeout=10)
        assert not thread.is_alive()
        with pytest.raises(RuntimeError, match="closed"):
            svc.submit(JobRequest())

    def test_double_close_is_safe(self, tmp_path):
        svc = YieldService(cache_dir=tmp_path)
        svc.close()
        svc.close()


class TestCliInterruptExit:
    def test_keyboard_interrupt_exits_130(self, monkeypatch):
        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "_cmd_jobs", interrupted)
        assert cli.main(["jobs"]) == 130

    def test_interrupt_during_serve_exits_130(self, monkeypatch, tmp_path):
        def interrupted_serve(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "_cmd_serve", interrupted_serve)
        assert cli.main(["serve", "--cache-dir", str(tmp_path)]) == 130
