"""Tests for the univariate laws (repro.stats.distributions).

Cross-validated against scipy.stats and, via hypothesis, for the
pdf/cdf/ppf consistency identities the Gibbs conditionals rely on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.stats.distributions import (
    ChiDistribution,
    StandardNormal,
    scipy_equivalent,
)


class TestStandardNormal:
    dist = StandardNormal()

    def test_pdf_matches_scipy(self):
        x = np.linspace(-6, 6, 101)
        np.testing.assert_allclose(self.dist.pdf(x), stats.norm.pdf(x), rtol=1e-12)

    def test_cdf_matches_scipy(self):
        x = np.linspace(-8, 8, 101)
        np.testing.assert_allclose(self.dist.cdf(x), stats.norm.cdf(x), rtol=1e-10)

    def test_ppf_matches_scipy(self):
        q = np.linspace(1e-10, 1 - 1e-10, 51)
        np.testing.assert_allclose(self.dist.ppf(q), stats.norm.ppf(q), rtol=1e-9)

    def test_logpdf_consistent_with_pdf(self):
        x = np.linspace(-10, 10, 21)
        np.testing.assert_allclose(
            np.exp(self.dist.logpdf(x)), self.dist.pdf(x), rtol=1e-12
        )

    @given(st.floats(-7.0, 5.0))
    def test_ppf_inverts_cdf(self, x):
        # Above ~5 sigma the CDF saturates toward 1 and the double-precision
        # round trip through 1-q loses digits; the deep *left* tail (which is
        # the one the failure slices use, via cdf values near 0) stays exact.
        assert self.dist.ppf(self.dist.cdf(x)) == pytest.approx(x, abs=1e-6)

    def test_support(self):
        lo, hi = self.dist.support
        assert lo == -np.inf and hi == np.inf

    def test_sample_moments(self, rng):
        draws = self.dist.sample(rng, 200_000)
        assert abs(draws.mean()) < 0.01
        assert abs(draws.std() - 1.0) < 0.01


class TestChiDistribution:
    @pytest.mark.parametrize("dof", [1, 2, 3, 6, 12, 30])
    def test_pdf_matches_scipy(self, dof):
        dist = ChiDistribution(dof)
        r = np.linspace(0.01, 10, 77)
        np.testing.assert_allclose(dist.pdf(r), stats.chi.pdf(r, dof), rtol=1e-10)

    @pytest.mark.parametrize("dof", [1, 2, 6, 20])
    def test_cdf_matches_scipy(self, dof):
        dist = ChiDistribution(dof)
        r = np.linspace(0, 12, 61)
        np.testing.assert_allclose(dist.cdf(r), stats.chi.cdf(r, dof), atol=1e-12)

    @pytest.mark.parametrize("dof", [1, 2, 6, 20])
    def test_ppf_matches_scipy(self, dof):
        dist = ChiDistribution(dof)
        q = np.linspace(1e-9, 1 - 1e-9, 41)
        np.testing.assert_allclose(dist.ppf(q), stats.chi.ppf(q, dof), rtol=1e-8)

    def test_pdf_zero_at_nonpositive(self):
        dist = ChiDistribution(6)
        np.testing.assert_array_equal(dist.pdf(np.array([-1.0, 0.0])), [0.0, 0.0])

    def test_logpdf_minus_inf_at_nonpositive(self):
        dist = ChiDistribution(4)
        assert np.all(np.isneginf(dist.logpdf(np.array([-2.0, 0.0]))))

    def test_mean_formula(self):
        for dof in (1, 2, 6, 15):
            assert ChiDistribution(dof).mean == pytest.approx(
                stats.chi.mean(dof), rel=1e-10
            )

    def test_sample_matches_mean(self, rng):
        dist = ChiDistribution(6)
        draws = dist.sample(rng, 100_000)
        assert draws.mean() == pytest.approx(dist.mean, abs=0.02)

    def test_radius_of_normal_vector_is_chi(self, rng):
        """Eq. (13): r = ||x|| with x ~ N(0, I_M) follows Chi(M)."""
        m = 6
        x = rng.standard_normal((50_000, m))
        radii = np.linalg.norm(x, axis=1)
        ks = stats.kstest(radii, stats.chi(m).cdf)
        assert ks.pvalue > 1e-3

    @given(st.integers(1, 40), st.floats(0.05, 0.95))
    @settings(max_examples=40)
    def test_ppf_inverts_cdf(self, dof, q):
        dist = ChiDistribution(dof)
        assert dist.cdf(dist.ppf(q)) == pytest.approx(q, abs=1e-9)

    def test_invalid_dof_raises(self):
        with pytest.raises(ValueError):
            ChiDistribution(0)

    def test_support(self):
        assert ChiDistribution(3).support == (0.0, np.inf)


class TestScipyEquivalent:
    def test_normal(self):
        frozen = scipy_equivalent(StandardNormal())
        assert frozen.cdf(0) == pytest.approx(0.5)

    def test_chi(self):
        frozen = scipy_equivalent(ChiDistribution(5))
        assert frozen.mean() == pytest.approx(ChiDistribution(5).mean)

    def test_unknown_raises(self):
        with pytest.raises(TypeError):
            scipy_equivalent(object())
