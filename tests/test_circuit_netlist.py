"""Tests for circuit construction (repro.circuit.netlist)."""

import numpy as np
import pytest

from repro.circuit.netlist import GROUND, Circuit, CurrentSource, Resistor
from repro.devices.mosfet import NMOS, MosfetParams

NPARAMS = MosfetParams(polarity=NMOS, vth=0.35, beta=9e-4)


class TestCircuitBuild:
    def test_nodes_registered_in_order(self):
        c = Circuit()
        c.add_resistor("r1", 1e3, "a", "b")
        c.add_resistor("r2", 1e3, "b", "0")
        assert c.nodes == [GROUND, "a", "b"]

    def test_duplicate_name_raises(self):
        c = Circuit()
        c.add_resistor("r1", 1e3, "a", "0")
        with pytest.raises(ValueError, match="duplicate"):
            c.add_resistor("r1", 2e3, "b", "0")

    def test_element_lookup(self):
        c = Circuit()
        r = c.add_resistor("load", 1e3, "a", "0")
        assert c.element("load") is r

    def test_unknown_element_raises(self):
        c = Circuit()
        with pytest.raises(KeyError, match="no element"):
            c.element("nope")

    def test_mosfet_nodes_include_bulk(self):
        c = Circuit()
        m = c.add_mosfet("m1", NPARAMS, drain="d", gate="g", source="s", bulk="b")
        assert m.nodes == ("d", "g", "s", "b")
        assert set(c.nodes) >= {"d", "g", "s", "b"}

    def test_mosfet_default_bulk_is_ground(self):
        c = Circuit()
        m = c.add_mosfet("m1", NPARAMS, drain="d", gate="g", source="0")
        assert m.nodes[3] == GROUND

    def test_repr(self):
        c = Circuit("amp")
        c.add_resistor("r1", 1e3, "a", "0")
        assert "amp" in repr(c) and "1 elements" in repr(c)


class TestResistor:
    def test_nonpositive_resistance_raises(self):
        with pytest.raises(ValueError):
            Resistor("r", 0.0, "a", "b")

    def test_kcl_contributions(self):
        r = Resistor("r", 100.0, "a", "b")
        currents, jac = r.kcl_contributions((np.array(1.0), np.array(0.0)))
        assert currents[0] == pytest.approx(0.01)
        assert currents[1] == pytest.approx(-0.01)
        assert jac[0][0] == pytest.approx(0.01)  # dI_a/dVa = 1/R
        assert jac[0][1] == pytest.approx(-0.01)

    def test_branch_current(self):
        r = Resistor("r", 50.0, "a", "b")
        assert r.branch_current((2.0, 1.0)) == pytest.approx(0.02)


class TestCurrentSource:
    def test_contributions_independent_of_voltage(self):
        s = CurrentSource("i", 1e-3, "a", "b")
        currents, jac = s.kcl_contributions((np.array(5.0), np.array(-5.0)))
        assert currents[0] == pytest.approx(1e-3)
        assert currents[1] == pytest.approx(-1e-3)
        assert np.all(np.asarray(jac) == 0)


class TestMosfetElement:
    def test_kcl_charge_conservation(self):
        c = Circuit()
        m = c.add_mosfet("m1", NPARAMS, "d", "g", "s")
        v = tuple(np.array(x) for x in (1.2, 0.9, 0.0, 0.0))
        currents, jac = m.kcl_contributions(v)
        # Drain and source currents must cancel; gate and bulk draw nothing.
        assert currents[0] == pytest.approx(-currents[2])
        assert currents[1] == 0.0 and currents[3] == 0.0
        # Jacobian rows mirror likewise.
        for j in range(4):
            assert jac[0][j] == pytest.approx(-jac[2][j])

    def test_branch_current_matches_device(self):
        c = Circuit()
        m = c.add_mosfet("m1", NPARAMS, "d", "g", "s")
        i_elem = m.branch_current((1.2, 0.9, 0.0, 0.0))
        i_dev = m.device.current(0.9, 1.2, 0.0, 0.0)
        assert i_elem == pytest.approx(i_dev)
