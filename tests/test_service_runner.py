"""Tests for one job's execution (repro.service.runner).

The acceptance contract of the artifact cache, asserted with the suite's
own instrument (a :class:`CountedMetric` wrapped around the problem's
metric, injected through ``execute_job``'s ``problem`` override):

* a warm-cache query performs **zero** first-stage metric evaluations;
* an incremental-refinement hit evaluates exactly the missing shards and
  its merged sim counts equal the instrument's, on every backend;
* a refined result is bit-identical to a fresh run at the same total
  budget (the tagged second-stage stream + prefix-stable shard grid).

Synthetic problems keep the metric analytic, so a full cold Gibbs job
runs in milliseconds.
"""

import dataclasses

import numpy as np
import pytest

from repro.mc.counter import CountedMetric
from repro.parallel.executor import ParallelExecutor
from repro.service.cache import ArtifactCache
from repro.service.jobs import JobCancelled, JobRequest
from repro.service.runner import execute_job, second_stage_seed
from repro.synthetic import LinearMetric

#: Small-but-real Gibbs budgets; a cold job is a few hundred evaluations.
GIBBS_KWARGS = dict(
    problem="iread", method="G-S", seed=3,
    n_gibbs=30, doe_budget=60, n_second_stage=128, shard_size=32,
)


def _instrumented_problem():
    """A 2-D half-space problem whose metric counts every evaluation."""
    problem = LinearMetric(np.array([1.0, 0.5]), 2.2).problem("halfspace")
    instrument = CountedMetric(problem.metric, problem.metric.dimension)
    return dataclasses.replace(problem, metric=instrument), instrument


def _job(manifest):
    return manifest["job"]


class TestColdWarm:
    def test_cold_run_populates_cache(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        problem, instrument = _instrumented_problem()
        request = JobRequest(**GIBBS_KWARGS)
        result, manifest = execute_job(request, cache=cache, problem=problem)
        job = _job(manifest)
        assert job["cache_hit"] is False and job["mode"] == "cold"
        assert result.n_second_stage == 128
        # The runner's instrument and the test's agree exactly.
        assert job["sims_run"] == instrument.count
        assert job["sims_run"] == result.n_first_stage + result.n_second_stage
        assert job["first_stage_sims"] == result.n_first_stage > 0
        assert len(cache) == 1

    def test_warm_hit_evaluates_zero_metrics(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        problem, _ = _instrumented_problem()
        request = JobRequest(**GIBBS_KWARGS)
        cold, _ = execute_job(request, cache=cache, problem=problem)

        warm_problem, instrument = _instrumented_problem()
        result, manifest = execute_job(
            request, cache=cache, problem=warm_problem
        )
        job = _job(manifest)
        assert instrument.count == 0, "warm hit must simulate nothing"
        assert job["cache_hit"] is True and job["mode"] == "cached_result"
        assert job["sims_run"] == 0 and job["first_stage_sims"] == 0
        assert job["first_stage_sims_saved"] == cold.n_first_stage
        assert result.failure_probability == cold.failure_probability

    def test_budget_is_a_floor(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        problem, _ = _instrumented_problem()
        execute_job(JobRequest(**GIBBS_KWARGS), cache=cache, problem=problem)

        smaller = JobRequest(**{**GIBBS_KWARGS, "n_second_stage": 64})
        warm_problem, instrument = _instrumented_problem()
        result, manifest = execute_job(
            smaller, cache=cache, problem=warm_problem
        )
        assert instrument.count == 0
        assert _job(manifest)["mode"] == "cached_result"
        # The stored, larger-budget estimate is returned outright.
        assert result.n_second_stage == 128

    def test_use_cache_false_forces_cold(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        problem, _ = _instrumented_problem()
        execute_job(JobRequest(**GIBBS_KWARGS), cache=cache, problem=problem)

        forced = JobRequest(**{**GIBBS_KWARGS, "use_cache": False})
        warm_problem, instrument = _instrumented_problem()
        _, manifest = execute_job(forced, cache=cache, problem=warm_problem)
        job = _job(manifest)
        assert job["cache_hit"] is False and job["mode"] == "cold"
        assert instrument.count > 128  # paid the first stage again


class TestRefinement:
    def test_refinement_runs_only_missing_shards(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        problem, _ = _instrumented_problem()
        execute_job(JobRequest(**GIBBS_KWARGS), cache=cache, problem=problem)

        bigger = JobRequest(**{**GIBBS_KWARGS, "n_second_stage": 256})
        warm_problem, instrument = _instrumented_problem()
        result, manifest = execute_job(
            bigger, cache=cache, problem=warm_problem
        )
        job = _job(manifest)
        assert job["mode"] == "refined"
        assert instrument.count == 256 - 128, "only the new shards simulate"
        assert job["sims_run"] == instrument.count
        assert job["first_stage_sims"] == 0
        assert result.n_second_stage == 256
        assert result.extras["first_stage_reused"] is True

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_merged_counts_equal_instrument_counts(self, tmp_path, backend):
        """Refinement accounting is exact on every backend.

        The runner's own instrument (surfaced as the manifest's
        ``sims_run``, with worker-process tallies folded home) must agree
        exactly with the number of newly merged samples.
        """
        cache = ArtifactCache(tmp_path / backend)
        problem, _ = _instrumented_problem()
        request = JobRequest(**GIBBS_KWARGS)
        execute_job(request, cache=cache, problem=problem)

        bigger = JobRequest(**{**GIBBS_KWARGS, "n_second_stage": 256})
        warm_problem, _ = _instrumented_problem()
        executor = ParallelExecutor(n_workers=2, backend=backend)
        with executor:
            result, manifest = execute_job(
                bigger, cache=cache, executor=executor, problem=warm_problem,
            )
        job = _job(manifest)
        assert job["mode"] == "refined"
        assert job["sims_run"] == result.n_second_stage - 128 == 128
        entry = cache.get(job["key"])
        assert entry.second_stage["n_samples"] == 256
        assert entry.second_stage["weights"].size == 256

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_refined_result_is_backend_invariant(self, tmp_path, backend):
        def refine(root, executor=None):
            cache = ArtifactCache(root)
            problem, _ = _instrumented_problem()
            execute_job(
                JobRequest(**GIBBS_KWARGS), cache=cache, problem=problem,
            )
            bigger = JobRequest(**{**GIBBS_KWARGS, "n_second_stage": 256})
            warm_problem, _ = _instrumented_problem()
            result, _ = execute_job(
                bigger, cache=cache, executor=executor, problem=warm_problem,
            )
            return result

        serial = refine(tmp_path / "serial")
        with ParallelExecutor(n_workers=2, backend=backend) as executor:
            parallel = refine(tmp_path / backend, executor)
        assert parallel.failure_probability == serial.failure_probability
        np.testing.assert_array_equal(
            parallel.trace.estimate, serial.trace.estimate
        )

    def test_refined_equals_fresh_at_same_budget(self, tmp_path):
        """Bit-identity: refine 128->256 == one fresh 256-sample run."""
        warm_cache = ArtifactCache(tmp_path / "warm")
        problem, _ = _instrumented_problem()
        execute_job(
            JobRequest(**GIBBS_KWARGS), cache=warm_cache, problem=problem,
        )
        bigger = JobRequest(**{**GIBBS_KWARGS, "n_second_stage": 256})
        warm_problem, _ = _instrumented_problem()
        refined, _ = execute_job(
            bigger, cache=warm_cache, problem=warm_problem,
        )

        fresh_problem, _ = _instrumented_problem()
        fresh, _ = execute_job(
            bigger, cache=ArtifactCache(tmp_path / "fresh"),
            problem=fresh_problem,
        )
        assert refined.failure_probability == fresh.failure_probability
        assert refined.extras["n_failures"] == fresh.extras["n_failures"]
        np.testing.assert_array_equal(
            refined.trace.estimate, fresh.trace.estimate
        )
        np.testing.assert_array_equal(
            refined.trace.relative_error, fresh.trace.relative_error
        )

    def test_stored_weights_are_a_prefix_of_larger_runs(self, tmp_path):
        """The shard grid for N is a prefix of the grid for N' > N."""
        small_cache = ArtifactCache(tmp_path / "small")
        big_cache = ArtifactCache(tmp_path / "big")
        problem, _ = _instrumented_problem()
        request = JobRequest(**GIBBS_KWARGS)
        execute_job(request, cache=small_cache, problem=problem)
        bigger = JobRequest(**{**GIBBS_KWARGS, "n_second_stage": 256})
        problem2, _ = _instrumented_problem()
        execute_job(bigger, cache=big_cache, problem=problem2)

        from repro.service.keys import job_key

        key = job_key(request)
        small = small_cache.get(key).second_stage["weights"]
        big = big_cache.get(key).second_stage["weights"]
        np.testing.assert_array_equal(big[: small.size], small)

    def test_grid_mismatch_reruns_second_stage_only(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        problem, _ = _instrumented_problem()
        execute_job(JobRequest(**GIBBS_KWARGS), cache=cache, problem=problem)

        regrid = JobRequest(**{
            **GIBBS_KWARGS, "n_second_stage": 144, "shard_size": 48,
        })
        warm_problem, instrument = _instrumented_problem()
        result, manifest = execute_job(
            regrid, cache=cache, problem=warm_problem
        )
        job = _job(manifest)
        assert job["mode"] == "second_stage_rerun"
        assert job["first_stage_sims"] == 0
        # The full (cheap) second stage reruns; the first stage never does.
        assert instrument.count == 144 == job["sims_run"]
        assert result.n_first_stage == 0
        assert result.extras["first_stage_reused"] is True


class TestSecondStageStream:
    def test_tagged_stream_is_seed_deterministic(self):
        a = second_stage_seed(7).generate_state(4)
        b = second_stage_seed(7).generate_state(4)
        c = second_stage_seed(8).generate_state(4)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_spawned_children_are_prefix_stable(self):
        few = second_stage_seed(7).spawn(2)
        many = second_stage_seed(7).spawn(5)
        for child_few, child_many in zip(few, many):
            np.testing.assert_array_equal(
                child_few.generate_state(2), child_many.generate_state(2)
            )


class TestNonGibbsMethods:
    def test_mc_job_caches_its_result(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        request = JobRequest(
            problem="iread", method="MC", seed=5,
            n_second_stage=512, shard_size=128,
        )
        problem, _ = _instrumented_problem()
        cold, cold_manifest = execute_job(
            request, cache=cache, problem=problem
        )
        assert _job(cold_manifest)["mode"] == "cold"
        assert _job(cold_manifest)["sims_run"] == cold.n_total

        warm_problem, instrument = _instrumented_problem()
        warm, manifest = execute_job(
            request, cache=cache, problem=warm_problem
        )
        job = _job(manifest)
        assert instrument.count == 0
        assert job["mode"] == "cached_result" and job["sims_run"] == 0
        assert warm.failure_probability == cold.failure_probability


class TestCancellation:
    def test_abort_before_start(self, tmp_path):
        problem, instrument = _instrumented_problem()
        with pytest.raises(JobCancelled, match="stop requested"):
            execute_job(
                JobRequest(**GIBBS_KWARGS),
                cache=ArtifactCache(tmp_path),
                problem=problem,
                should_abort=lambda: "stop requested",
            )
        assert instrument.count == 0

    def test_abort_between_stages(self, tmp_path):
        # Reference cold run: learn the first stage's exact cost.
        reference, _ = _instrumented_problem()
        cold, _ = execute_job(
            JobRequest(**GIBBS_KWARGS),
            cache=ArtifactCache(tmp_path / "ref"),
            problem=reference,
        )

        calls = {"n": 0}

        def abort_after_first_check():
            calls["n"] += 1
            return None if calls["n"] == 1 else "cancelled"

        problem, instrument = _instrumented_problem()
        with pytest.raises(JobCancelled, match="cancelled"):
            execute_job(
                JobRequest(**GIBBS_KWARGS),
                cache=ArtifactCache(tmp_path / "aborted"),
                problem=problem,
                should_abort=abort_after_first_check,
            )
        # The first stage ran to completion; the second stage never started.
        assert instrument.count == cold.n_first_stage

    def test_cancelled_job_stores_nothing(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        problem, _ = _instrumented_problem()
        with pytest.raises(JobCancelled):
            execute_job(
                JobRequest(**GIBBS_KWARGS), cache=cache, problem=problem,
                should_abort=lambda: "stop",
            )
        assert len(cache) == 0


class TestValidation:
    def test_invalid_request_rejected_before_simulating(self, tmp_path):
        problem, instrument = _instrumented_problem()
        with pytest.raises(ValueError, match="n_second_stage"):
            execute_job(
                JobRequest(**{**GIBBS_KWARGS, "n_second_stage": 1}),
                problem=problem,
            )
        assert instrument.count == 0

    def test_unknown_problem_rejected(self):
        with pytest.raises(ValueError, match="unknown problem"):
            execute_job(JobRequest(problem="nope"))

    def test_no_cache_means_every_run_is_cold(self):
        problem, instrument = _instrumented_problem()
        request = JobRequest(**GIBBS_KWARGS)
        _, manifest = execute_job(request, cache=None, problem=problem)
        job = _job(manifest)
        assert job["cache_hit"] is False and job["cache"] is None
