"""Sanity checks on the example scripts.

Full example runs take minutes (they are demos, not tests), but every
script must at least compile and reference only real library names, so a
refactor cannot silently break them.
"""

import ast
import py_compile
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path, tmp_path):
    py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    """Every ``from repro...`` import in an example must name something that
    actually exists in the library."""
    import importlib

    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and (
            node.module == "repro" or node.module.startswith("repro.")
        ):
            module = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{path.name}: {node.module}.{alias.name} does not exist"
                )


def test_expected_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "read_current_study.py",
        "method_comparison.py",
        "custom_circuit.py",
        "yield_exploration.py",
        "dynamic_write_failure.py",
    } <= names


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_has_docstring_and_main(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path.name} lacks a module docstring"
    names = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
    assert "main" in names, f"{path.name} lacks a main() entry point"
