"""Tests for the persisted-format primitives in repro.mc.results.

The cache's correctness rests on two properties of :func:`content_key`:
*canonicalization* (spelling differences that cannot change the sampled
numbers — kwarg order, ``2`` vs ``2.0``, tuple vs list, numpy scalar
types — hash identically) and *separation* (any genuine value difference
— seed, corner, threshold, estimator knob — never collides).  Plus the
loud-failure contract: non-JSON-able fields raise instead of hashing
``repr`` strings, and every :class:`EstimationResult` carries the format
version it was built under.
"""

import numpy as np
import pytest

from repro.mc.results import SCHEMA_VERSION, EstimationResult, content_key


class TestContentKeyCanonicalization:
    def test_kwarg_order_is_irrelevant(self):
        assert content_key(a=1, b="x", c=None) == content_key(c=None, b="x", a=1)

    def test_integral_float_equals_int(self):
        assert content_key(n=2) == content_key(n=2.0)

    def test_nonintegral_float_differs_from_int(self):
        assert content_key(n=2) != content_key(n=2.5)

    def test_numpy_scalars_equal_python_scalars(self):
        assert content_key(seed=np.int64(7)) == content_key(seed=7)
        assert content_key(s=np.float64(0.03)) == content_key(s=0.03)
        assert content_key(flag=np.True_) == content_key(flag=True)

    def test_tuple_equals_list(self):
        assert content_key(shape=(3, 4)) == content_key(shape=[3, 4])

    def test_zero_d_array_equals_scalar(self):
        assert content_key(z=np.array(5)) == content_key(z=5)

    def test_nested_dicts_sort_keys(self):
        assert (
            content_key(cfg={"a": 1, "b": {"y": 2, "x": 1}})
            == content_key(cfg={"b": {"x": 1, "y": 2}, "a": 1})
        )

    def test_array_equals_list(self):
        assert content_key(v=np.array([1.0, 2.0])) == content_key(v=[1, 2])


class TestContentKeySeparation:
    BASE = dict(
        problem="iread", method="G-S", corner="TT", sigma_global=0.03,
        threshold=None, seed=0, n_gibbs=300, zeta=8.0,
    )

    @pytest.mark.parametrize("field,value", [
        ("seed", 1),
        ("corner", "FF"),
        ("threshold", 1.2e-5),
        ("sigma_global", 0.05),
        ("problem", "rnm"),
        ("method", "G-C"),
        ("n_gibbs", 301),
        ("zeta", 6.0),
    ])
    def test_any_value_difference_changes_the_key(self, field, value):
        changed = dict(self.BASE, **{field: value})
        assert content_key(**changed) != content_key(**self.BASE)

    def test_none_differs_from_zero_and_empty(self):
        assert content_key(t=None) != content_key(t=0)
        assert content_key(t=None) != content_key(t="")

    def test_true_differs_from_one_string(self):
        # bool canonicalises to JSON true, not to 1's spelling.
        assert content_key(f=True) != content_key(f="True")

    def test_field_name_matters(self):
        assert content_key(a=1) != content_key(b=1)

    def test_key_is_hex_sha256(self):
        key = content_key(**self.BASE)
        assert len(key) == 64
        int(key, 16)  # raises if not hex


class TestContentKeyLoudFailure:
    def test_non_jsonable_raises_type_error(self):
        with pytest.raises(TypeError, match="JSON-able"):
            content_key(rng=np.random.default_rng(0))

    def test_object_inside_container_raises(self):
        with pytest.raises(TypeError, match="JSON-able"):
            content_key(cfg={"inner": object()})

    def test_non_finite_floats_are_allowed(self):
        # inf/nan are legal values (e.g. an unreached threshold) and must
        # not collide with each other or with large ints.
        assert content_key(x=float("inf")) != content_key(x=float("-inf"))
        assert content_key(x=float("nan")) != content_key(x=0)


class TestResultSchemaVersion:
    def _result(self, **overrides):
        fields = dict(
            method="G-S", failure_probability=1e-5, relative_error=0.04,
            n_first_stage=500, n_second_stage=5000,
        )
        fields.update(overrides)
        return EstimationResult(**fields)

    def test_default_version_is_current(self):
        assert self._result().schema_version == SCHEMA_VERSION

    def test_version_is_persisted_state_not_class_state(self):
        # A result deserialised from an old cache keeps its own stamp.
        old = self._result(schema_version=SCHEMA_VERSION - 1)
        assert old.schema_version == SCHEMA_VERSION - 1

    def test_n_total_accounting(self):
        assert self._result().n_total == 5500
