"""Tests for the array-yield rollup (repro.analysis.yield_model)."""

import math

import pytest
from scipy import stats

from repro.analysis.yield_model import (
    array_failure_probability,
    cell_budget_for_yield,
    repair_yield,
)


class TestArrayFailureProbability:
    def test_matches_exact_binomial(self):
        p, n = 1e-3, 500
        exact = 1.0 - (1.0 - p) ** n
        assert array_failure_probability(p, n) == pytest.approx(exact, rel=1e-12)

    def test_stable_in_rare_regime(self):
        """p = 1e-9, N = 1e6: naive (1-p)^n is all round-off; the stable
        form must agree with the n*p expansion."""
        out = array_failure_probability(1e-9, 1e6)
        # exact limit: 1 - exp(-n p) to O(p) corrections
        assert out == pytest.approx(-math.expm1(-1e-3), rel=1e-6)

    def test_saturates_at_one(self):
        assert array_failure_probability(1e-3, 1e8) == pytest.approx(1.0)

    def test_edge_cases(self):
        assert array_failure_probability(0.0, 1e9) == 0.0
        assert array_failure_probability(1.0, 10) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            array_failure_probability(-0.1, 10)
        with pytest.raises(ValueError):
            array_failure_probability(0.5, 0)


class TestRepairYield:
    def test_no_repair_is_poisson_zero(self):
        p, n = 2e-6, 1e6
        assert repair_yield(p, n, 0) == pytest.approx(math.exp(-n * p), rel=1e-10)

    def test_matches_poisson_cdf(self):
        p, n, k = 1e-6, 4e6, 5
        expected = stats.poisson(n * p).cdf(k)
        assert repair_yield(p, n, k) == pytest.approx(expected, rel=1e-9)

    def test_repair_improves_yield(self):
        p, n = 2e-6, 1e6
        yields = [repair_yield(p, n, k) for k in range(4)]
        assert yields[0] < yields[1] < yields[2] < yields[3]

    def test_validation(self):
        with pytest.raises(ValueError):
            repair_yield(1e-6, 1e6, -1)


class TestCellBudget:
    def test_no_repair_closed_form(self):
        y, n = 0.99, 1e7
        assert cell_budget_for_yield(y, n, 0) == pytest.approx(
            -math.log(y) / n, rel=1e-9
        )

    def test_round_trip(self):
        n, k = 5e6, 3
        budget = cell_budget_for_yield(0.95, n, k)
        assert repair_yield(budget, n, k) == pytest.approx(0.95, rel=1e-8)

    def test_repair_relaxes_budget(self):
        budgets = [cell_budget_for_yield(0.99, 1e7, k) for k in range(3)]
        assert budgets[0] < budgets[1] < budgets[2]

    def test_paper_regime_sanity(self):
        """For a 10 Mb array at 99% yield with no repair, the cell budget is
        ~1e-9 — precisely the paper's 1e-8..1e-6 'extremely small failure
        probability' regime once repair and margins enter."""
        budget = cell_budget_for_yield(0.99, 1e7, 0)
        assert 5e-10 < budget < 5e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            cell_budget_for_yield(1.5, 1e6)
        with pytest.raises(ValueError):
            cell_budget_for_yield(0.9, -1)
        with pytest.raises(ValueError):
            cell_budget_for_yield(0.9, 1e6, -2)
