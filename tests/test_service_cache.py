"""Tests for the disk-backed artifact cache (repro.service.cache).

Three contracts: round-trip fidelity (what you put is what you get,
across instances and processes), loud format failure (schema skew and
corruption raise :class:`CacheSchemaError` naming the file, never
mis-deserialise), and crash tolerance (a dangling index row is a miss,
not an error).
"""

import json
import pickle

import numpy as np
import pytest

from repro.mc.results import SCHEMA_VERSION, EstimationResult
from repro.service.cache import ArtifactCache, CacheEntry, CacheSchemaError
from repro.service.jobs import JobRequest
from repro.service.keys import job_key, request_identity


def _entry(request: JobRequest, n_samples: int = 64) -> CacheEntry:
    weights = np.zeros(n_samples)
    weights[::7] = 1e-5
    result = EstimationResult(
        method=request.method,
        failure_probability=float(weights.mean()),
        relative_error=0.05,
        n_first_stage=123,
        n_second_stage=n_samples,
    )
    return CacheEntry(
        key=job_key(request),
        config=request_identity(request),
        result=result,
        second_stage={
            "shard_size": 32,
            "n_samples": n_samples,
            "weights": weights,
            "n_failures": int(np.count_nonzero(weights)),
        },
    )


class TestRoundTrip:
    def test_miss_returns_none_and_counts(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.get("deadbeef") is None
        assert cache.misses == 1 and cache.hits == 0

    def test_put_get_round_trip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        request = JobRequest(seed=3)
        entry = _entry(request)
        cache.put(entry.key, entry)
        loaded = cache.get(entry.key)
        assert loaded.key == entry.key
        assert loaded.config == request_identity(request)
        assert loaded.result.failure_probability == entry.result.failure_probability
        np.testing.assert_array_equal(
            loaded.second_stage["weights"], entry.second_stage["weights"]
        )
        assert cache.hits == 1

    def test_index_persists_across_instances(self, tmp_path):
        request = JobRequest(seed=9)
        entry = _entry(request)
        ArtifactCache(tmp_path).put(entry.key, entry)
        reopened = ArtifactCache(tmp_path)
        assert entry.key in reopened
        assert len(reopened) == 1
        assert reopened.get(entry.key).result.n_first_stage == 123

    def test_per_entry_hit_tally_persists(self, tmp_path):
        entry = _entry(JobRequest(seed=1))
        cache = ArtifactCache(tmp_path)
        cache.put(entry.key, entry)
        cache.get(entry.key)
        cache.get(entry.key)
        index = json.loads((tmp_path / "index.json").read_text())
        assert index["entries"][entry.key]["hits"] == 2

    def test_refinement_tally(self, tmp_path):
        entry = _entry(JobRequest(seed=2))
        cache = ArtifactCache(tmp_path)
        cache.put(entry.key, entry)
        cache.note_refinement(entry.key)
        assert cache.refinements == 1
        index = json.loads((tmp_path / "index.json").read_text())
        assert index["entries"][entry.key]["refinements"] == 1

    def test_put_preserves_created_at_and_tallies(self, tmp_path):
        entry = _entry(JobRequest(seed=4))
        cache = ArtifactCache(tmp_path)
        cache.put(entry.key, entry)
        cache.get(entry.key)
        cache.put(entry.key, entry)  # refresh (e.g. after refinement)
        index = json.loads((tmp_path / "index.json").read_text())
        assert index["entries"][entry.key]["hits"] == 1

    def test_stats_shape(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        stats = cache.stats()
        assert stats["entries"] == 0
        assert set(stats) >= {"root", "entries", "hits", "misses", "refinements"}


class TestLoudFormatFailure:
    def test_corrupted_pickle_raises_schema_error(self, tmp_path):
        entry = _entry(JobRequest(seed=5))
        cache = ArtifactCache(tmp_path)
        cache.put(entry.key, entry)
        (tmp_path / f"{entry.key}.pkl").write_bytes(b"not a pickle at all")
        with pytest.raises(CacheSchemaError, match="failed to deserialise"):
            ArtifactCache(tmp_path).get(entry.key)

    def test_foreign_entry_version_raises(self, tmp_path):
        entry = _entry(JobRequest(seed=6))
        entry.schema_version = SCHEMA_VERSION + 1
        cache = ArtifactCache(tmp_path)
        cache.put(entry.key, entry)
        with pytest.raises(CacheSchemaError, match="schema_version"):
            ArtifactCache(tmp_path).get(entry.key)

    def test_foreign_result_version_raises(self, tmp_path):
        # The entry wrapper may match while the payload inside is old.
        entry = _entry(JobRequest(seed=7))
        entry.result.schema_version = SCHEMA_VERSION - 1
        cache = ArtifactCache(tmp_path)
        cache.put(entry.key, entry)
        with pytest.raises(CacheSchemaError, match="schema_version"):
            ArtifactCache(tmp_path).get(entry.key)

    def test_non_entry_pickle_raises(self, tmp_path):
        entry = _entry(JobRequest(seed=8))
        cache = ArtifactCache(tmp_path)
        cache.put(entry.key, entry)
        (tmp_path / f"{entry.key}.pkl").write_bytes(
            pickle.dumps({"i am": "not a CacheEntry"})
        )
        with pytest.raises(CacheSchemaError):
            ArtifactCache(tmp_path).get(entry.key)

    def test_foreign_index_version_raises_on_open(self, tmp_path):
        (tmp_path / "index.json").write_text(
            json.dumps({"schema_version": SCHEMA_VERSION + 1, "entries": {}})
        )
        with pytest.raises(CacheSchemaError, match="foreign format"):
            ArtifactCache(tmp_path)

    def test_unreadable_index_raises_on_open(self, tmp_path):
        (tmp_path / "index.json").write_text("{truncated")
        with pytest.raises(CacheSchemaError, match="unreadable"):
            ArtifactCache(tmp_path)


class TestCrashTolerance:
    def test_dangling_index_row_is_a_miss_and_heals(self, tmp_path):
        entry = _entry(JobRequest(seed=11))
        cache = ArtifactCache(tmp_path)
        cache.put(entry.key, entry)
        (tmp_path / f"{entry.key}.pkl").unlink()
        reopened = ArtifactCache(tmp_path)
        assert reopened.get(entry.key) is None
        assert reopened.misses == 1
        # The row is dropped, so a fresh instance no longer lists it.
        assert entry.key not in ArtifactCache(tmp_path)


class TestKeyDiscipline:
    def test_equivalent_spellings_share_an_entry(self, tmp_path):
        a = JobRequest(seed=2, sigma_global=0.03, corner="tt")
        b = JobRequest(corner="TT", sigma_global=0.03, seed=2.0)
        assert job_key(a) == job_key(b)

    def test_serving_knobs_do_not_split_entries(self):
        a = JobRequest(seed=2, n_second_stage=1000, shard_size=128,
                       timeout=5.0, use_cache=False)
        b = JobRequest(seed=2, n_second_stage=9000, shard_size=512)
        assert job_key(a) == job_key(b)

    @pytest.mark.parametrize("field,value", [
        ("seed", 3),
        ("corner", "SS"),
        ("threshold", 2.0e-5),
        ("sigma_global", 0.05),
        ("problem", "rnm"),
        ("method", "G-C"),
        ("n_gibbs", 400),
        ("proposal_fit", "mixture"),
    ])
    def test_identity_fields_never_collide(self, field, value):
        base = JobRequest(seed=2)
        changed = JobRequest(**{**base.to_dict(), field: value})
        assert job_key(changed) != job_key(base)
