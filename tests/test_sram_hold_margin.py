"""Tests for the hold (standby) noise margin (repro.sram.metrics)."""

import numpy as np
import pytest

from repro.sram.metrics import HoldNoiseMarginMetric, ReadNoiseMarginMetric


class TestHoldNoiseMargin:
    @pytest.fixture(scope="class")
    def hold_metric(self, cell):
        return HoldNoiseMarginMetric(cell)

    def test_nominal_value_plausible(self, hold_metric):
        hold = hold_metric(np.zeros(6))[0]
        assert 0.3 < hold < 0.6

    def test_hold_exceeds_read_margin(self, hold_metric, rnm_metric, rng):
        """Physics invariant: the read access robs stability, so hold SNM
        must upper-bound read SNM for every sample."""
        x = rng.standard_normal((24, 6))
        hold = hold_metric(x)
        read = rnm_metric(x)
        assert np.all(hold > read)

    def test_access_mismatch_irrelevant_when_wl_low(self, hold_metric):
        """With the wordline off, access-transistor Vth shifts leave the
        hold margin (essentially) unchanged."""
        x = np.zeros((2, 6))
        x[1, 2], x[1, 3] = 6.0, -6.0  # huge access mismatch
        vals = hold_metric(x)
        assert vals[1] == pytest.approx(vals[0], abs=2e-3)

    def test_pulldown_mismatch_degrades(self, hold_metric):
        x = np.zeros((2, 6))
        x[1, 0] = 5.0
        vals = hold_metric(x)
        assert vals[1] < vals[0]

    def test_deterministic(self, hold_metric, rng):
        x = rng.standard_normal((4, 6))
        np.testing.assert_array_equal(hold_metric(x), hold_metric(x))
