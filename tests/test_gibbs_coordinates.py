"""Tests for the redundant spherical parameterisation (repro.gibbs.coordinates).

The centrepiece is the empirical verification of Theorem 1: drawing
r ~ Chi(M) and alpha ~ N(0, I_M) and mapping through Eq. (11) must
reproduce x ~ N(0, I_M) exactly.
"""

import numpy as np
import pytest
from scipy import stats

from repro.gibbs.coordinates import (
    cartesian_radius,
    initial_spherical_coordinates,
    spherical_to_cartesian,
)
from repro.stats.distributions import ChiDistribution


class TestSphericalToCartesian:
    def test_radius_preserved(self, rng):
        alpha = rng.standard_normal((100, 4))
        r = rng.uniform(0.5, 5.0, 100)
        x = spherical_to_cartesian(r, alpha)
        np.testing.assert_allclose(np.linalg.norm(x, axis=1), r, rtol=1e-12)

    def test_direction_preserved(self, rng):
        alpha = np.array([3.0, 4.0])
        x = spherical_to_cartesian(10.0, alpha)
        np.testing.assert_allclose(x[0], [6.0, 8.0], rtol=1e-12)

    def test_scale_redundancy(self):
        """Eq. (11): scaling alpha leaves x unchanged."""
        alpha = np.array([1.0, -2.0, 0.5])
        a = spherical_to_cartesian(3.0, alpha)
        b = spherical_to_cartesian(3.0, 100.0 * alpha)
        c = spherical_to_cartesian(3.0, 1e-3 * alpha)
        np.testing.assert_allclose(a, b, rtol=1e-12)
        np.testing.assert_allclose(a, c, rtol=1e-12)

    def test_zero_alpha_raises(self):
        with pytest.raises(ValueError, match="zero length"):
            spherical_to_cartesian(1.0, np.zeros(3))


class TestTheorem1:
    """Given r ~ Chi(M) and alpha ~ N(0, I), x of Eq. (11) is N(0, I)."""

    def draw_x(self, rng, m, n):
        r = ChiDistribution(m).sample(rng, n)
        alpha = rng.standard_normal((n, m))
        return spherical_to_cartesian(r, alpha)

    @pytest.mark.parametrize("m", [2, 3, 6])
    def test_marginals_standard_normal(self, rng, m):
        x = self.draw_x(rng, m, 40_000)
        for k in range(m):
            ks = stats.kstest(x[:, k], stats.norm.cdf)
            assert ks.pvalue > 1e-4

    def test_components_uncorrelated(self, rng):
        x = self.draw_x(rng, 4, 100_000)
        cov = np.cov(x, rowvar=False)
        np.testing.assert_allclose(cov, np.eye(4), atol=0.02)

    def test_moments(self, rng):
        x = self.draw_x(rng, 6, 100_000)
        np.testing.assert_allclose(x.mean(axis=0), 0.0, atol=0.02)
        np.testing.assert_allclose(x.std(axis=0), 1.0, atol=0.02)

    def test_orientation_uniform(self, rng):
        """Marsaglia [17]: alpha/||alpha|| is uniform on the sphere; in 2-D
        the polar angle must be uniform."""
        alpha = rng.standard_normal((40_000, 2))
        theta = np.arctan2(alpha[:, 1], alpha[:, 0])
        ks = stats.kstest(theta, stats.uniform(-np.pi, 2 * np.pi).cdf)
        assert ks.pvalue > 1e-4


class TestInitialCoordinates:
    def test_radius_is_norm(self):
        x0 = np.array([3.0, 4.0])
        r, alpha = initial_spherical_coordinates(x0)
        assert r == pytest.approx(5.0)

    def test_alpha_epsilon_length(self):
        x0 = np.array([1.0, 1.0, 1.0])
        _, alpha = initial_spherical_coordinates(x0, epsilon=1e-3)
        assert np.linalg.norm(alpha) == pytest.approx(1e-3)

    def test_round_trip_to_x(self):
        """Eq. (30)-(32): mapping back must recover the starting point."""
        x0 = np.array([1.0, -2.0, 0.5, 3.0])
        r, alpha = initial_spherical_coordinates(x0, epsilon=1e-2)
        x_back = spherical_to_cartesian(r, alpha)[0]
        np.testing.assert_allclose(x_back, x0, rtol=1e-10)

    def test_origin_raises(self):
        with pytest.raises(ValueError, match="origin"):
            initial_spherical_coordinates(np.zeros(3))

    def test_nonpositive_epsilon_raises(self):
        with pytest.raises(ValueError, match="epsilon"):
            initial_spherical_coordinates(np.ones(2), epsilon=0.0)


class TestCartesianRadius:
    def test_matches_norm(self, rng):
        x = rng.standard_normal((20, 5))
        np.testing.assert_allclose(
            cartesian_radius(x), np.linalg.norm(x, axis=1)
        )
