"""Tests for the spherical-sampling baseline (repro.baselines.spherical_sampling)."""

import numpy as np
import pytest

from repro.baselines.spherical_sampling import spherical_sampling
from repro.mc.counter import CountedMetric
from repro.mc.indicator import FailureSpec
from repro.synthetic import AnnularArcMetric, LinearMetric, SphereTailMetric

SPEC = FailureSpec(0.0, fail_below=True)


class TestSphericalSampling:
    def test_exact_on_sphere_tail(self, rng):
        """A radially-symmetric region: every shell fraction is exactly 0
        or 1 and the estimate reduces to the Chi-square tail, up to the
        radial resolution at the (discontinuous) onset radius."""
        metric = SphereTailMetric(radius=4.0, dimension=2)
        result = spherical_sampling(
            metric, SPEC, n_shells=200, samples_per_shell=30, rng=rng
        )
        assert result.failure_probability == pytest.approx(
            metric.exact_failure_probability, rel=0.2
        )

    def test_sphere_tail_converges_with_resolution(self, rng):
        """Radial-onset bias must shrink as shells refine — the method's
        documented accuracy limit."""
        metric = SphereTailMetric(radius=4.0, dimension=2)
        exact = metric.exact_failure_probability
        errs = []
        for n_shells in (25, 100, 400):
            result = spherical_sampling(
                metric, SPEC, n_shells=n_shells, samples_per_shell=10,
                rng=np.random.default_rng(7),
            )
            errs.append(abs(result.failure_probability - exact) / exact)
        assert errs[2] < errs[0]
        assert errs[2] < 0.1

    def test_halfspace(self, rng):
        metric = LinearMetric(np.array([1.0, 0.0]), 3.5)
        result = spherical_sampling(
            metric, SPEC, n_shells=90, samples_per_shell=400, rng=rng
        )
        assert result.failure_probability == pytest.approx(
            metric.exact_failure_probability, rel=0.3
        )

    def test_handles_bent_arc_region(self, rng):
        """Unlike mean-shift IS, shell sampling sees every orientation, so
        the Section V-B geometry poses no coverage problem."""
        metric = AnnularArcMetric(radius=4.5, center_angle=0.6, half_width=0.9)
        result = spherical_sampling(
            metric, SPEC, n_shells=90, samples_per_shell=600, rng=rng
        )
        assert result.failure_probability == pytest.approx(
            metric.exact_failure_probability, rel=0.35
        )

    def test_simulation_accounting(self, rng):
        metric = CountedMetric(LinearMetric(np.array([1.0]), 3.0), 1)
        result = spherical_sampling(
            metric, SPEC, n_shells=10, samples_per_shell=20, rng=rng
        )
        assert metric.count == 200
        assert result.n_second_stage == 200

    def test_shell_extras(self, rng):
        metric = SphereTailMetric(radius=3.0, dimension=2)
        result = spherical_sampling(
            metric, SPEC, n_shells=12, samples_per_shell=30, rng=rng
        )
        fr = result.extras["shell_fractions"]
        radii = result.extras["shell_radii"]
        # Fractions jump from 0 to 1 across the boundary radius.
        assert np.all(fr[radii < 2.8] == 0.0)
        assert np.all(fr[radii > 3.2] == 1.0)

    def test_parameter_validation(self, rng):
        metric = LinearMetric(np.array([1.0]), 3.0)
        with pytest.raises(ValueError, match="shells"):
            spherical_sampling(metric, SPEC, n_shells=1, rng=rng)
        with pytest.raises(ValueError, match="r_min"):
            spherical_sampling(metric, SPEC, r_min=-1.0, rng=rng)

    def test_method_label(self, rng):
        metric = LinearMetric(np.array([1.0]), 3.0)
        result = spherical_sampling(
            metric, SPEC, n_shells=5, samples_per_shell=10, rng=rng
        )
        assert result.method == "SphSamp"
