"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_estimate_defaults(self):
        args = build_parser().parse_args(["estimate"])
        assert args.method == "G-S"
        assert args.problem == "iread"

    def test_compare_methods_list(self):
        args = build_parser().parse_args(
            ["compare", "--methods", "MNIS", "G-S"]
        )
        assert args.methods == ["MNIS", "G-S"]

    def test_unknown_problem_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["estimate", "--problem", "nope"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_workers_default_serial(self):
        args = build_parser().parse_args(["estimate"])
        assert args.workers is None

    def test_workers_flag_parsed(self):
        args = build_parser().parse_args(["compare", "--workers", "4"])
        assert args.workers == 4


class TestCommands:
    def test_region_command(self, capsys):
        code = main(["region", "--problem", "iread", "--grid", "31"])
        assert code == 0
        out = capsys.readouterr().out
        assert "#" in out and "failing fraction" in out

    def test_region_rejects_high_dimensional_problem(self, capsys):
        code = main(["region", "--problem", "rnm"])
        assert code == 2
        assert "2-D only" in capsys.readouterr().err

    def test_estimate_command_small_budget(self, capsys):
        code = main([
            "estimate", "--problem", "iread", "--method", "G-S",
            "--n-gibbs", "40", "--n-second", "400", "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "G-S: P_f" in out
        assert "Gibbs samples" in out

    def test_estimate_mc(self, capsys):
        code = main([
            "estimate", "--problem", "iread", "--method", "MC",
            "--n-second", "5000",
        ])
        assert code == 0
        assert "MC: P_f" in capsys.readouterr().out

    def test_estimate_mc_workers_matches_worker_free_reference(self, capsys):
        """--workers shards the run; the estimate depends on the seed only."""
        assert main([
            "estimate", "--problem", "iread", "--method", "MC",
            "--n-second", "4000", "--seed", "9", "--workers", "2",
        ]) == 0
        line_sharded = [
            line for line in capsys.readouterr().out.splitlines()
            if "MC: P_f" in line
        ][0]
        assert main([
            "estimate", "--problem", "iread", "--method", "MC",
            "--n-second", "4000", "--seed", "9", "--workers", "1",
        ]) == 0
        line_reference = [
            line for line in capsys.readouterr().out.splitlines()
            if "MC: P_f" in line
        ][0]
        assert line_sharded == line_reference

    def test_estimate_twrite_problem(self, capsys):
        code = main([
            "estimate", "--problem", "twrite", "--method", "G-C",
            "--n-gibbs", "30", "--n-second", "300", "--doe-budget", "120",
            "--seed", "3",
        ])
        assert code == 0
        assert "G-C: P_f" in capsys.readouterr().out

    def test_compare_command_small_budget(self, capsys):
        code = main([
            "compare", "--problem", "iread", "--methods", "MNIS", "G-S",
            "--n-gibbs", "40", "--n-second", "400", "--doe-budget", "80",
            "--seed", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "MNIS" in out and "G-S" in out
        assert "agreement check" in out
