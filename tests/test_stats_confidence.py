"""Tests for the 99%-CI relative-error figure of merit (repro.stats.confidence)."""

import math

import numpy as np
import pytest
from scipy import special

from repro.stats.confidence import (
    Z_99,
    confidence_halfwidth,
    montecarlo_relative_error,
    relative_error,
)


class TestZ99:
    def test_value(self):
        assert Z_99 == pytest.approx(2.5758, abs=1e-4)


class TestConfidenceHalfwidth:
    def test_matches_manual_formula(self, rng):
        w = rng.exponential(size=1000)
        expected = Z_99 * w.std(ddof=1) / math.sqrt(w.size)
        assert confidence_halfwidth(w) == pytest.approx(expected, rel=1e-12)

    def test_other_confidence_level(self, rng):
        w = rng.exponential(size=500)
        z95 = float(special.ndtri(0.975))
        expected = z95 * w.std(ddof=1) / math.sqrt(w.size)
        assert confidence_halfwidth(w, 0.95) == pytest.approx(expected, rel=1e-12)

    def test_too_few_samples_is_inf(self):
        assert math.isinf(confidence_halfwidth(np.array([1.0])))

    def test_constant_weights_zero_halfwidth(self):
        assert confidence_halfwidth(np.full(100, 3.0)) == 0.0


class TestRelativeError:
    def test_all_zero_weights_is_inf(self):
        assert math.isinf(relative_error(np.zeros(100)))

    def test_empty_is_inf(self):
        assert math.isinf(relative_error(np.array([])))

    def test_scales_inversely_with_sqrt_n(self, rng):
        w = rng.exponential(size=400)
        w4 = np.tile(w, 4)
        # Same mean and (population) variance, 4x the samples -> half error.
        ratio = relative_error(w4) / relative_error(w)
        assert ratio == pytest.approx(0.5, rel=0.01)

    def test_zero_variance_is_zero_error(self):
        """The g_opt limit: constant weights estimate exactly (Section II)."""
        assert relative_error(np.full(50, 1e-6)) == pytest.approx(0.0, abs=1e-12)


class TestMonteCarloRelativeError:
    def test_formula(self):
        failures, total = 100, 10_000
        p = failures / total
        expected = Z_99 * math.sqrt(p * (1 - p) / total) / p
        assert montecarlo_relative_error(failures, total) == pytest.approx(expected)

    def test_no_failures_is_inf(self):
        assert math.isinf(montecarlo_relative_error(0, 1000))

    def test_tiny_total_is_inf(self):
        assert math.isinf(montecarlo_relative_error(1, 1))

    def test_agrees_with_weight_based_error(self, rng):
        """A 0/1 weight vector must give (asymptotically) the same answer."""
        n, p = 50_000, 0.02
        fails = rng.uniform(size=n) < p
        w = fails.astype(float)
        k = int(fails.sum())
        assert relative_error(w) == pytest.approx(
            montecarlo_relative_error(k, n), rel=1e-3
        )
