"""Tests for input validation helpers (repro.utils.validation)."""

import numpy as np
import pytest

from repro.utils.validation import as_sample_matrix, check_finite


class TestAsSampleMatrix:
    def test_vector_promoted_to_row(self):
        out = as_sample_matrix(np.array([1.0, 2.0, 3.0]))
        assert out.shape == (1, 3)

    def test_matrix_passthrough(self):
        x = np.zeros((4, 2))
        out = as_sample_matrix(x)
        assert out.shape == (4, 2)

    def test_dimension_enforced(self):
        with pytest.raises(ValueError, match="columns"):
            as_sample_matrix(np.zeros((3, 2)), dimension=5)

    def test_dimension_accepted(self):
        out = as_sample_matrix(np.zeros((3, 5)), dimension=5)
        assert out.shape == (3, 5)

    def test_3d_rejected(self):
        with pytest.raises(ValueError, match="sample matrix"):
            as_sample_matrix(np.zeros((2, 2, 2)))

    def test_list_input_coerced_to_float(self):
        out = as_sample_matrix([[1, 2], [3, 4]])
        assert out.dtype == float

    def test_vector_dimension_check(self):
        out = as_sample_matrix(np.array([1.0, 2.0]), dimension=2)
        assert out.shape == (1, 2)


class TestCheckFinite:
    def test_finite_passes(self):
        arr = np.array([1.0, -2.0, 0.0])
        out = check_finite("x", arr)
        np.testing.assert_array_equal(out, arr)

    def test_nan_raises(self):
        with pytest.raises(ValueError, match="x contains"):
            check_finite("x", np.array([1.0, np.nan]))

    def test_inf_raises(self):
        with pytest.raises(ValueError, match="grid"):
            check_finite("grid", np.array([np.inf]))
